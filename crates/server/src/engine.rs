//! The replicated service engine: one event loop from intake to ack.
//!
//! The engine owns the service's entire command path. Requests arrive
//! from connections (socket readers or in-process [`crate::LocalKv`]
//! sessions) on an intake channel; the engine's driver thread
//!
//! 1. **deduplicates** each `(ClientId, RequestId)` against the decided
//!    log — an applied request is re-acknowledged from the cache, an
//!    in-flight one is re-targeted to the newest connection, only a
//!    fresh one enters a batch (the exactly-once contract);
//! 2. **batches** fresh commands through the log crate's
//!    [`ClientFrontend`] (sealed at `batch_size`, or by the linger timer
//!    so a lone request never waits for a full batch);
//! 3. **pipelines** consensus: up to `pipeline_depth` instances of
//!    `A_{t+2}` (round-2 fast path) race on one reusable
//!    [`indulgent_runtime::Session`], every replica proposing the same
//!    sealed batch id (a live service has one in-process sequencer, so
//!    shared proposals make double-choosing impossible by construction —
//!    the audit still checks it);
//! 4. **applies** decided slots in order: materializes the store,
//!    computes each command's response from the store state at its slot,
//!    persists the slot to the write-ahead log ([`crate::wal`]) and
//!    `fdatasync`s it **before** any acknowledgement leaves, records the
//!    ack in the dedup cache, and pushes it to the submitting
//!    connection.
//!
//! # Crash recovery
//!
//! With a [`DurabilityConfig`], the fault model widens from crash-stop
//! to crash-*recovery*. Every applied slot is WAL-logged before it is
//! acknowledged, and every `snapshot_every` slots the engine checkpoints
//! — snapshot (store + session dedup table + applied-through + batch-id
//! high-water mark) written atomically, then the WAL and the in-memory
//! slot history prefix-truncated. A restarted engine re-hydrates from
//! snapshot + WAL replay: the store resumes, *sessions resume* (a retry
//! of a pre-crash request is still answered from the cache — exactly
//! once survives the restart), and new consensus instances map onto log
//! slots past the recovered prefix (`slot = recovered_base + instance`,
//! since the fresh [`Session`]'s instance ids restart at 1).
//!
//! # Reads: the lease fast path
//!
//! Writes are always sequenced; reads follow the configured
//! [`ReadPath`]. Under `--reads log` ([`ReadPath::Sequenced`]) a `Get`
//! occupies a slot exactly like a write — the pre-lease behavior. Under
//! [`ReadPath::Lease`] the engine holds a leader lease ([`crate::lease`])
//! and answers `Get`s from its applied store at a *read index* equal to
//! the applied frontier, without a slot, a WAL record, or an fsync;
//! when the lease is suspect it falls down the ladder (quorum-attest
//! read, then sequenced read). Every fast read is recorded as a
//! [`FastReadRecord`] and checked by the audit against the decided-log
//! replay at its read index: a fast read must equal what a sequenced
//! read at that slot would have answered. At every checkpoint the
//! retained records are verified against the history being folded and
//! then dropped (any mismatch is latched and fails every later audit),
//! so the audit spans the whole run even though records do not
//! accumulate without bound.
//!
//! Every acknowledged response is thus computed from (or checked
//! against) the log's total order — linearizability is structural, and
//! [`ServiceAudit::check`] re-verifies it after the fact by replaying
//! the log with independent code and comparing every response byte for
//! byte, across the *combined* pre/post-restart history (the recovered
//! prefix seeds the replay base). Lease epochs are burned to disk
//! before an incarnation serves anything, so the crash-recovery path
//! also covers the lease: a rebooted leader re-acquires under a strictly
//! newer epoch and can never fast-read on the promises made to its
//! previous self.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use indulgent_log::{at_plus2_factory, at_plus2_reset, AtSlot, ClientFrontend, IntakePolicy};
use indulgent_model::{BatchId, ClientId, CommandId, Decision, RequestId, SystemConfig};
use indulgent_runtime::{DelayModel, InstanceSpec, Session};

use crate::lease::{self, LeaderLease, LeaseConfig, ReadPath, ReplicaLeaseAgent};
use crate::proto::{
    AuditSummary, KvOp, LeaseFrame, LeaseStatus, Outcome, Request, Response, SyncFrame,
};
use crate::snapshot::{SessionEntry, Snapshot};
use crate::wal::{Wal, WalTail};

/// Where and how often the engine persists its state.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `wal.log` and `state.snap`.
    pub dir: PathBuf,
    /// Checkpoint (snapshot + WAL/in-memory prefix truncation) every
    /// this many applied slots past the last checkpoint; `0` defers the
    /// snapshot to clean shutdown (the WAL alone carries recovery).
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    /// Durability rooted at `dir`, checkpointing every 256 slots.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig { dir: dir.into(), snapshot_every: 256 }
    }

    /// Sets the checkpoint interval (in applied slots; `0` = only at
    /// clean shutdown).
    #[must_use]
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every;
        self
    }
}

/// Sizing and timing of a service engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The replica group (n, t).
    pub system: SystemConfig,
    /// Commands per sealed batch.
    pub batch_size: usize,
    /// Bounded in-flight window of consensus instances.
    pub pipeline_depth: u64,
    /// Per-instance round budget.
    pub max_rounds: u32,
    /// Straggler grace window of the replica session.
    pub grace: Duration,
    /// Replica-to-replica delay model (Instant for a colocated group;
    /// Uniform to emulate a real RTT).
    pub delays: DelayModel,
    /// How long a non-empty partial batch may linger before it is sealed
    /// anyway — bounds the latency a lone request pays for batching.
    pub linger: Duration,
    /// Watchdog: the engine panics if consensus makes no progress for
    /// this long with instances in flight (a wedged service must fail
    /// loudly, not hang a CI job).
    pub stall_timeout: Duration,
    /// WAL + snapshot persistence; `None` runs crash-stop (in-memory
    /// only, the pre-durability behavior).
    pub durability: Option<DurabilityConfig>,
    /// How `Get`s are answered (see [`crate::lease`]); `Sequenced` is
    /// the pre-lease behavior and the `--reads log` escape hatch.
    pub reads: ReadPath,
    /// Lease timing (TTL, renew cadence, safety margin); only consulted
    /// when `reads` is not `Sequenced`.
    pub lease: LeaseConfig,
}

impl EngineConfig {
    /// A 5-replica, t = 2 service with service-sized defaults: batches
    /// of 8, pipeline depth 4, instant replica links, 500 µs linger, no
    /// durability.
    ///
    /// # Panics
    ///
    /// Never; the 5/2 majority configuration is valid.
    #[must_use]
    pub fn default_5() -> Self {
        EngineConfig {
            system: SystemConfig::majority(5, 2).expect("5/2 is a valid majority config"),
            batch_size: 8,
            pipeline_depth: 4,
            max_rounds: 60,
            grace: Duration::from_millis(2),
            delays: DelayModel::Instant,
            linger: Duration::from_micros(500),
            stall_timeout: Duration::from_secs(30),
            durability: None,
            reads: ReadPath::Sequenced,
            lease: LeaseConfig::default(),
        }
    }

    /// Sets the batch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batches hold at least one command");
        self.batch_size = batch_size;
        self
    }

    /// Sets the pipeline depth.
    #[must_use]
    pub fn with_pipeline_depth(mut self, depth: u64) -> Self {
        assert!(depth >= 1, "pipeline depth is at least 1");
        self.pipeline_depth = depth;
        self
    }

    /// Sets the replica-to-replica delay model.
    #[must_use]
    pub fn with_delays(mut self, delays: DelayModel) -> Self {
        self.delays = delays;
        self
    }

    /// Enables WAL + snapshot durability rooted at `dir` (see
    /// [`DurabilityConfig`] for the checkpoint cadence).
    #[must_use]
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Sets the read path (the `--reads` flag).
    #[must_use]
    pub fn with_reads(mut self, reads: ReadPath) -> Self {
        self.reads = reads;
        self
    }

    /// Sets the lease timing knobs.
    #[must_use]
    pub fn with_lease(mut self, lease: LeaseConfig) -> Self {
        self.lease = lease;
        self
    }
}

/// Identifier of one connection registered with the engine (a socket on
/// the TCP server, or an in-process local session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId(pub u64);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn{}", self.0)
    }
}

/// What the engine pushes onto a connection's outbound channel.
#[derive(Debug, Clone)]
pub enum Outbound {
    /// A request acknowledgement.
    Ack(Response),
    /// A pre-encoded control frame payload (sync stream, audit reply);
    /// the transport writes it as one frame verbatim.
    Control(Vec<u8>),
}

/// Intake messages from connections to the engine's driver thread.
#[derive(Debug)]
enum EngineMsg {
    Register {
        conn: ConnId,
        tx: Sender<Outbound>,
    },
    Deregister {
        conn: ConnId,
    },
    Submit {
        conn: ConnId,
        request: Request,
    },
    /// Stream durable state (snapshot + catch-up records) to `conn`.
    Sync {
        conn: ConnId,
    },
    /// Run the replay audit and reply its summary to `conn`.
    Audit {
        conn: ConnId,
    },
    /// Reply the current lease / read-path state to `conn`.
    LeaseState {
        conn: ConnId,
    },
    Shutdown,
    /// Hard-crash: exit immediately, no drain, no final snapshot.
    Die,
}

/// A cloneable handle for registering connections with a running engine.
#[derive(Debug, Clone)]
pub struct EngineHandle {
    intake: Sender<EngineMsg>,
    next_conn: Arc<AtomicU64>,
}

impl EngineHandle {
    /// Registers a new connection: returns the submit side and the
    /// outbound stream (acknowledgements and control frames). Dropping
    /// the [`SubmitHandle`] deregisters the connection (responses for
    /// its in-flight requests are dropped unless the client re-targets
    /// them by retrying elsewhere).
    #[must_use]
    pub fn connect(&self) -> (SubmitHandle, Receiver<Outbound>) {
        let conn = ConnId(self.next_conn.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = unbounded();
        // A send failure means the engine already shut down; the submit
        // handle's sends will surface that to the caller.
        let _ = self.intake.send(EngineMsg::Register { conn, tx });
        (SubmitHandle { conn, intake: self.intake.clone() }, rx)
    }
}

/// The submit side of one registered connection.
#[derive(Debug)]
pub struct SubmitHandle {
    conn: ConnId,
    intake: Sender<EngineMsg>,
}

impl SubmitHandle {
    /// This connection's id.
    #[must_use]
    pub fn conn(&self) -> ConnId {
        self.conn
    }

    /// Submits a request; `false` if the engine has shut down.
    pub fn submit(&self, request: Request) -> bool {
        self.intake.send(EngineMsg::Submit { conn: self.conn, request }).is_ok()
    }

    /// Asks the engine to stream its durable state to this connection as
    /// control frames (the rejoin transfer); `false` if the engine has
    /// shut down.
    pub fn request_sync(&self) -> bool {
        self.intake.send(EngineMsg::Sync { conn: self.conn }).is_ok()
    }

    /// Asks the engine to run the replay audit and reply a summary
    /// control frame; `false` if the engine has shut down.
    pub fn request_audit(&self) -> bool {
        self.intake.send(EngineMsg::Audit { conn: self.conn }).is_ok()
    }

    /// Asks the engine to reply a [`LeaseStatus`] control frame —
    /// the lease-state observability hook; `false` if the engine has
    /// shut down.
    pub fn request_lease_state(&self) -> bool {
        self.intake.send(EngineMsg::LeaseState { conn: self.conn }).is_ok()
    }
}

impl Drop for SubmitHandle {
    fn drop(&mut self) {
        let _ = self.intake.send(EngineMsg::Deregister { conn: self.conn });
    }
}

/// One acknowledged command inside a slot, as the engine recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckRecord {
    /// The submitting session.
    pub client: ClientId,
    /// The session's request number.
    pub request: RequestId,
    /// The operation sequenced.
    pub op: KvOp,
    /// The response the engine sent when it applied the slot.
    pub response: Response,
}

/// One applied log slot: the batch that occupied it and the commands it
/// carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotRecord {
    /// The slot (1-based, monotonic across incarnations).
    pub slot: u64,
    /// The decided batch.
    pub batch: BatchId,
    /// The batch's commands in order, with their recorded acks.
    pub commands: Vec<AckRecord>,
}

/// One read served off the log (lease or quorum fast path), as the
/// engine recorded it for the audit: the audit replays the decided log
/// to the record's read index and requires the value to match — a fast
/// read must equal what a sequenced read at that slot would have
/// answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastReadRecord {
    /// The submitting session.
    pub client: ClientId,
    /// The session's request number.
    pub request: RequestId,
    /// The key read.
    pub key: u16,
    /// The read index: the applied frontier at serve time.
    pub index: u64,
    /// The lease epoch the read was served under.
    pub epoch: u64,
    /// `true` if the read needed a quorum attest round (ladder step 2);
    /// `false` for a pure lease read.
    pub attested: bool,
    /// The value answered.
    pub value: Option<u32>,
}

/// Everything a finished service run exposes for verification.
///
/// The audit is the server-side ground truth the load generator's gate
/// runs against: [`check`](ServiceAudit::check) re-derives every
/// response from the decided log with independent replay code and
/// verifies the exactly-once bookkeeping, per-slot replica agreement,
/// and store consistency. With durability, the audit spans incarnations:
/// slots recovered from disk are replayed like live ones, and slots
/// folded into a checkpoint seed the replay base.
#[derive(Debug, Clone)]
pub struct ServiceAudit {
    /// The replica group.
    pub system: SystemConfig,
    /// Slots `<= base_slot` are folded into the base (checkpointed
    /// before this audit's retained history begins).
    pub base_slot: u64,
    /// The store materialized by the folded slots.
    pub base_store: BTreeMap<u16, u32>,
    /// The session dedup table at the base (acknowledgements the folded
    /// slots produced).
    pub base_sessions: Vec<SessionEntry>,
    /// Commands committed by the folded slots.
    pub base_commands: u64,
    /// The first slot decided by *this incarnation* (slots between
    /// `base_slot + 1` and `live_from - 1` were recovered from the WAL:
    /// they carry full records but no live consensus evidence).
    pub live_from: u64,
    /// The retained slots in log order (`base_slot + 1 ..`).
    pub slots: Vec<SlotRecord>,
    /// The batch id every replica was asked to propose, per live slot
    /// (index 0 = slot `live_from`).
    pub proposals: Vec<BatchId>,
    /// Per-live-slot, per-replica first decisions.
    pub replica_decisions: Vec<Vec<Option<Decision>>>,
    /// The store materialized by the engine at shutdown.
    pub final_store: BTreeMap<u16, u32>,
    /// Commands applied over the service lifetime (folded + retained).
    pub committed_commands: u64,
    /// Requests answered from the dedup cache or re-targeted while in
    /// flight — retries absorbed without a second apply.
    pub dedup_hits: u64,
    /// Slots whose batch was already applied (must be zero; the shared
    /// single-sequencer proposal rule cannot produce one).
    pub duplicate_applies: u64,
    /// Fast reads retained since the last checkpoint, in serve order
    /// (read indices non-decreasing, all within the retained history).
    pub fast_reads: Vec<FastReadRecord>,
    /// Fast reads already verified and folded away at checkpoints.
    pub folded_fast_reads: u64,
    /// Folded fast reads whose checkpoint-time verification failed
    /// (latched: must be zero for the audit to pass).
    pub fast_read_mismatches: u64,
    /// The lease epoch this incarnation served under (0 = leases off;
    /// every fast read must carry exactly this epoch).
    pub lease_epoch: u64,
}

/// A violated service invariant found by [`ServiceAudit::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditViolation {
    /// A replica decided a different value than the canonical one (or
    /// never decided) for a slot.
    SlotDisagreement {
        /// The slot.
        slot: u64,
        /// The offending replica.
        replica: usize,
    },
    /// A slot decided a value that was never proposed for it.
    SlotInvalid {
        /// The slot.
        slot: u64,
    },
    /// A `(client, request)` pair was applied more than once.
    DoubleApply {
        /// The submitting session.
        client: ClientId,
        /// The replayed request number.
        request: RequestId,
    },
    /// A recorded response differs from the log replay's answer.
    ResponseMismatch {
        /// The slot whose replay disagrees.
        slot: u64,
        /// The request whose ack is wrong.
        request: RequestId,
    },
    /// The engine's final store differs from the replayed store.
    StoreDivergence,
    /// The engine counted duplicate applies (defense-in-depth net fired).
    DuplicateApplies {
        /// How many times.
        count: u64,
    },
    /// The retained slots are not contiguous from the base.
    SlotGap {
        /// The slot expected at the gap.
        expected: u64,
        /// The slot found instead.
        found: u64,
    },
    /// A fast read's value differs from the decided-prefix replay at
    /// its read index — the stale-read detector fired.
    StaleFastRead {
        /// The request whose read is stale.
        request: RequestId,
        /// The read index it was served at.
        index: u64,
    },
    /// Fast reads were served with decreasing read indices.
    ReadIndexRegression {
        /// The regressing index.
        index: u64,
        /// The index it regressed below.
        after: u64,
    },
    /// A fast read's index is past the retained history.
    ReadIndexOutOfRange {
        /// The offending read index.
        index: u64,
    },
    /// A fast read was served under the wrong lease epoch (stale
    /// incarnation, or leases off entirely).
    EpochMismatch {
        /// The epoch the read carried.
        epoch: u64,
    },
    /// Checkpoint-time verification of folded fast reads failed.
    FoldedReadMismatches {
        /// How many folded reads failed replay.
        count: u64,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::SlotDisagreement { slot, replica } => {
                write!(f, "replica p{replica} disagrees with the canonical decision of slot {slot}")
            }
            AuditViolation::SlotInvalid { slot } => {
                write!(f, "slot {slot} decided a value that was not proposed for it")
            }
            AuditViolation::DoubleApply { client, request } => {
                write!(f, "{client}/{request} applied more than once")
            }
            AuditViolation::ResponseMismatch { slot, request } => {
                write!(f, "ack of {request} at slot {slot} differs from the log replay")
            }
            AuditViolation::StoreDivergence => {
                write!(f, "engine store differs from the replayed store")
            }
            AuditViolation::DuplicateApplies { count } => {
                write!(f, "{count} duplicate batch applies (safety net fired)")
            }
            AuditViolation::SlotGap { expected, found } => {
                write!(f, "retained history skips from slot {found} where {expected} was expected")
            }
            AuditViolation::StaleFastRead { request, index } => {
                write!(f, "fast read {request} at read-index {index} differs from the log replay")
            }
            AuditViolation::ReadIndexRegression { index, after } => {
                write!(f, "fast read served at read-index {index} after index {after}")
            }
            AuditViolation::ReadIndexOutOfRange { index } => {
                write!(f, "fast read at read-index {index} is past the retained history")
            }
            AuditViolation::EpochMismatch { epoch } => {
                write!(f, "fast read served under unexpected lease epoch {epoch}")
            }
            AuditViolation::FoldedReadMismatches { count } => {
                write!(f, "{count} checkpoint-folded fast reads failed replay verification")
            }
        }
    }
}

impl std::error::Error for AuditViolation {}

impl ServiceAudit {
    /// Verifies the run end to end: per-slot replica agreement and
    /// validity (for the slots this incarnation decided), exactly-once
    /// applies across incarnations, and — by replaying the retained
    /// decided log on top of the checkpointed base with independent code
    /// — that every acknowledged response and the final store are
    /// exactly what the total order dictates. This is the
    /// linearizability argument: all operations (reads included) are
    /// answered from the replayed total order, so acks that match the
    /// replay are linearized at their slots.
    pub fn check(&self) -> Result<(), AuditViolation> {
        if self.duplicate_applies > 0 {
            return Err(AuditViolation::DuplicateApplies { count: self.duplicate_applies });
        }
        if self.fast_read_mismatches > 0 {
            return Err(AuditViolation::FoldedReadMismatches { count: self.fast_read_mismatches });
        }
        // Fast-read metadata: correct epoch, non-decreasing read indices
        // from the base (serve order is linearization order).
        let mut prev_index = self.base_slot;
        for r in &self.fast_reads {
            if self.lease_epoch == 0 || r.epoch != self.lease_epoch {
                return Err(AuditViolation::EpochMismatch { epoch: r.epoch });
            }
            if r.index < prev_index {
                return Err(AuditViolation::ReadIndexRegression {
                    index: r.index,
                    after: prev_index,
                });
            }
            prev_index = r.index;
        }
        // Total order: every replica decided every live slot with the
        // proposed (hence canonical) value.
        for (idx, row) in self.replica_decisions.iter().enumerate() {
            let slot = self.live_from + idx as u64;
            let proposed = self.proposals[idx];
            for (replica, d) in row.iter().enumerate() {
                match d {
                    Some(d) if BatchId::from_value(d.value) == proposed => {}
                    _ => return Err(AuditViolation::SlotDisagreement { slot, replica }),
                }
            }
            // Validity against the retained record (live slots folded by
            // a later checkpoint keep their decision evidence only).
            if slot > self.base_slot {
                let offset = (slot - self.base_slot - 1) as usize;
                let recorded = self.slots.get(offset).map(|s| s.batch);
                if recorded != Some(proposed) {
                    return Err(AuditViolation::SlotInvalid { slot });
                }
            }
        }
        // Exactly-once + replay: rebuild the store from the checkpointed
        // base, slot by slot, and recompute every response.
        let mut store = self.base_store.clone();
        let mut seen: HashSet<(ClientId, RequestId)> = HashSet::new();
        for s in &self.base_sessions {
            if !seen.insert((s.client, s.request)) {
                return Err(AuditViolation::DoubleApply { client: s.client, request: s.request });
            }
        }
        // Fast reads participate in the exactly-once key space: a pair
        // answered off the log can never also occupy a slot.
        for r in &self.fast_reads {
            if !seen.insert((r.client, r.request)) {
                return Err(AuditViolation::DoubleApply { client: r.client, request: r.request });
            }
        }
        // Replay interleaved with the stale-read detector: a fast read
        // at index `i` must equal the store after every slot `<= i`.
        let mut reads = self.fast_reads.iter().peekable();
        while let Some(r) = reads.next_if(|r| r.index == self.base_slot) {
            if store.get(&r.key).copied() != r.value {
                return Err(AuditViolation::StaleFastRead { request: r.request, index: r.index });
            }
        }
        let mut commands = self.base_commands;
        for (expected_slot, rec) in (self.base_slot + 1..).zip(self.slots.iter()) {
            if rec.slot != expected_slot {
                return Err(AuditViolation::SlotGap { expected: expected_slot, found: rec.slot });
            }
            for ack in &rec.commands {
                if !seen.insert((ack.client, ack.request)) {
                    return Err(AuditViolation::DoubleApply {
                        client: ack.client,
                        request: ack.request,
                    });
                }
                let expected = match ack.op {
                    KvOp::Put { key, value } => {
                        store.insert(key, value);
                        Outcome::Put { slot: rec.slot }
                    }
                    KvOp::Get { key } => {
                        Outcome::Get { slot: rec.slot, value: store.get(&key).copied() }
                    }
                };
                let replayed = Response { request: ack.request, outcome: expected };
                if replayed != ack.response {
                    return Err(AuditViolation::ResponseMismatch {
                        slot: rec.slot,
                        request: ack.request,
                    });
                }
                commands += 1;
            }
            while let Some(r) = reads.next_if(|r| r.index == rec.slot) {
                if store.get(&r.key).copied() != r.value {
                    return Err(AuditViolation::StaleFastRead {
                        request: r.request,
                        index: r.index,
                    });
                }
            }
        }
        if let Some(r) = reads.next() {
            return Err(AuditViolation::ReadIndexOutOfRange { index: r.index });
        }
        if store != self.final_store || commands != self.committed_commands {
            return Err(AuditViolation::StoreDivergence);
        }
        Ok(())
    }
}

/// Dedup bookkeeping for one `(client, request)` pair.
enum DedupState {
    /// Batched but not yet decided; retries re-target the ack here.
    InFlight(CommandId),
    /// Applied; the cached ack answers every retry. Fast-read acks are
    /// cached too (retry idempotence within the incarnation) but are
    /// not WAL-durable — see the module docs.
    Applied(Response),
    /// A read waiting in the fast-read queue; retries re-target it.
    PendingRead,
}

/// Metadata of one in-flight command, keyed by [`CommandId`].
struct CmdMeta {
    conn: ConnId,
    client: ClientId,
    request: RequestId,
    op: KvOp,
}

/// A read queued for the fast path (lease or quorum), not yet served.
struct PendingRead {
    conn: ConnId,
    client: ClientId,
    request: RequestId,
    key: u16,
}

/// The running service engine: a driver thread owning the replica
/// session, reachable through [`EngineHandle`]s.
#[derive(Debug)]
pub struct KvEngine {
    handle: EngineHandle,
    driver: JoinHandle<ServiceAudit>,
}

impl KvEngine {
    /// Spawns the replica session and the driver thread (recovering from
    /// the durability directory first, if one is configured).
    #[must_use]
    pub fn spawn(config: EngineConfig) -> Self {
        let (intake_tx, intake_rx) = unbounded();
        let handle = EngineHandle { intake: intake_tx, next_conn: Arc::new(AtomicU64::new(1)) };
        let driver = std::thread::spawn(move || drive(&config, &intake_rx));
        KvEngine { handle, driver }
    }

    /// A handle for registering connections.
    #[must_use]
    pub fn handle(&self) -> EngineHandle {
        self.handle.clone()
    }

    /// Shuts the engine down: seals and sequences everything still
    /// queued, waits for all in-flight instances, checkpoints (when
    /// durable), then returns the audit.
    ///
    /// # Panics
    ///
    /// Panics if the driver thread panicked (e.g. the stall watchdog).
    #[must_use]
    pub fn shutdown(self) -> ServiceAudit {
        let _ = self.handle.intake.send(EngineMsg::Shutdown);
        self.driver.join().expect("engine driver panicked")
    }

    /// Hard-stops the engine like a crash: no drain, no final
    /// checkpoint — the durable state is exactly what the last
    /// slot-boundary fsync left behind. The in-process analog of
    /// `kill -9`, for recovery tests; in-flight commands are lost and
    /// must be replayed by their sessions.
    pub fn kill(self) {
        let _ = self.handle.intake.send(EngineMsg::Die);
        let _ = self.driver.join();
    }
}

/// Persistence handles of a durable engine.
struct Durable {
    wal: Wal,
    snap_path: PathBuf,
    every: u64,
}

/// Collects the Applied half of the dedup table, deterministically
/// ordered — the session table a snapshot persists.
fn dedup_sessions(dedup: &HashMap<(ClientId, RequestId), DedupState>) -> Vec<SessionEntry> {
    let mut sessions: Vec<SessionEntry> = dedup
        .iter()
        .filter_map(|(&(client, request), state)| match state {
            DedupState::Applied(response) => {
                Some(SessionEntry { client, request, response: *response })
            }
            DedupState::InFlight(_) | DedupState::PendingRead => None,
        })
        .collect();
    sessions.sort_by_key(|s| (s.client.0, s.request.0));
    sessions
}

/// Checkpoint-time verification of fast reads against the history about
/// to be folded: replays `base_store` + `slots` and requires every
/// record's value to match the store at its read index. Returns the
/// mismatch count (records whose index falls outside the replayed range
/// count as mismatches — they cannot be verified later, the history is
/// being dropped).
fn verify_fast_reads(
    base_slot: u64,
    base_store: &BTreeMap<u16, u32>,
    slots: &[SlotRecord],
    records: &[FastReadRecord],
) -> u64 {
    let mut store = base_store.clone();
    let mut mismatches = 0u64;
    let mut cursor = 0usize;
    while cursor < records.len() && records[cursor].index == base_slot {
        if store.get(&records[cursor].key).copied() != records[cursor].value {
            mismatches += 1;
        }
        cursor += 1;
    }
    for rec in slots {
        for ack in &rec.commands {
            if let KvOp::Put { key, value } = ack.op {
                store.insert(key, value);
            }
        }
        while cursor < records.len() && records[cursor].index == rec.slot {
            if store.get(&records[cursor].key).copied() != records[cursor].value {
                mismatches += 1;
            }
            cursor += 1;
        }
    }
    mismatches + (records.len() - cursor) as u64
}

/// The driver thread: the event loop described in the module docs.
#[allow(clippy::too_many_lines)]
fn drive(cfg: &EngineConfig, intake: &Receiver<EngineMsg>) -> ServiceAudit {
    let n = cfg.system.n();
    // A recycling session: retired slot automatons are reset in place
    // for later instances instead of being rebuilt per slot.
    let mut session: Session<AtSlot> = Session::with_recycler(
        cfg.system,
        cfg.grace,
        at_plus2_factory(cfg.system),
        at_plus2_reset(),
    );
    let spec =
        InstanceSpec { crashes: vec![None; n], delays: cfg.delays, max_rounds: cfg.max_rounds };

    let mut conns: HashMap<ConnId, Sender<Outbound>> = HashMap::new();
    let mut meta: HashMap<CommandId, CmdMeta> = HashMap::new();
    let mut dedup: HashMap<(ClientId, RequestId), DedupState> = HashMap::new();
    let mut ready: VecDeque<BatchId> = VecDeque::new();
    let mut first_decisions: BTreeMap<u64, Decision> = BTreeMap::new();
    let mut results: BTreeMap<u64, Vec<Option<Decision>>> = BTreeMap::new();
    let mut results_seen = 0u64;

    let mut store: BTreeMap<u16, u32> = BTreeMap::new();
    let mut applied_batches: HashSet<BatchId> = HashSet::new();
    let mut slots: Vec<SlotRecord> = Vec::new();
    let mut proposals: Vec<BatchId> = Vec::new();
    let mut committed_commands = 0u64;
    let mut dedup_hits = 0u64;
    let mut duplicate_applies = 0u64;

    // The read ladder's state: the reads waiting for the fast path, the
    // serve counters, and the audit's fast-read records.
    let read_path = cfg.reads;
    let mut pending_reads: VecDeque<PendingRead> = VecDeque::new();
    let mut fast_read_records: Vec<FastReadRecord> = Vec::new();
    let mut folded_fast_reads = 0u64;
    let mut fast_read_mismatches = 0u64;
    let mut reads_lease = 0u64;
    let mut reads_quorum = 0u64;
    let mut reads_sequenced = 0u64;

    // The audit base: state folded into the last checkpoint.
    let mut base_slot = 0u64;
    let mut base_store: BTreeMap<u16, u32> = BTreeMap::new();
    let mut base_sessions: Vec<SessionEntry> = Vec::new();
    let mut base_commands = 0u64;
    let mut base_next_batch = 0u64;
    let mut next_batch_seed = 0u64;

    // Recovery: re-hydrate snapshot + WAL into the pre-loop state.
    let mut durable = cfg.durability.as_ref().map(|d| {
        std::fs::create_dir_all(&d.dir).expect("durability directory is creatable");
        let snap_path = d.dir.join("state.snap");
        let snap = Snapshot::load(&snap_path)
            .expect("snapshot loads (corruption must fail loudly, not boot empty)")
            .unwrap_or_default();
        base_slot = snap.applied_through;
        base_next_batch = snap.next_batch;
        base_commands = snap.committed;
        base_store.clone_from(&snap.store);
        base_sessions.clone_from(&snap.sessions);
        store = snap.store;
        committed_commands = snap.committed;
        next_batch_seed = snap.next_batch;
        for s in &snap.sessions {
            dedup.insert((s.client, s.request), DedupState::Applied(s.response));
        }
        let (wal, replay) =
            Wal::open(&d.dir.join("wal.log")).expect("wal replays (torn tails self-repair)");
        assert!(
            !matches!(replay.tail, WalTail::Corrupt { .. }),
            "wal is bit-rotten ({:?}): refusing to serve from damaged state",
            replay.tail
        );
        for rec in replay.records {
            if rec.slot <= base_slot {
                // Already folded into the snapshot (a crash between
                // snapshot write and WAL reset leaves this overlap).
                continue;
            }
            assert_eq!(
                rec.slot,
                base_slot + slots.len() as u64 + 1,
                "wal records are slot-contiguous past the snapshot"
            );
            for ack in &rec.commands {
                if let KvOp::Put { key, value } = ack.op {
                    store.insert(key, value);
                }
                dedup.insert((ack.client, ack.request), DedupState::Applied(ack.response));
                committed_commands += 1;
            }
            next_batch_seed = next_batch_seed.max(rec.batch.0 + 1);
            applied_batches.insert(rec.batch);
            slots.push(rec);
        }
        Durable { wal, snap_path, every: d.snapshot_every }
    });

    // Lease bootstrap: burn a strictly newer epoch to disk BEFORE
    // serving anything, so a previous incarnation's grants can never be
    // mistaken for ours (crash recovery cannot resurrect a stale
    // fast-read privilege). Without durability the service is
    // crash-stop and a fixed epoch 1 suffices.
    let lease_epoch = if read_path == ReadPath::Sequenced {
        0
    } else if let Some(d) = cfg.durability.as_ref() {
        let epoch =
            lease::load_epoch(&d.dir).expect("lease epoch loads (corruption fails loudly)") + 1;
        lease::store_epoch(&d.dir, epoch).expect("lease epoch burns before serving");
        epoch
    } else {
        1
    };
    // The replica-side lease agents. The replica group is in-process
    // (threads on one session), so lease traffic crosses the protocol
    // boundary as encoded [`LeaseFrame`]s — the same bytes a networked
    // group would exchange — but is delivered by function call.
    let mut agents: Vec<ReplicaLeaseAgent> =
        (0..n).map(|i| ReplicaLeaseAgent::new(u32::try_from(i).expect("replica index"))).collect();
    let mut lease_state = (lease_epoch > 0).then(|| {
        LeaderLease::new(lease_epoch, lease::fresh_holder(), n, cfg.system.quorum(), cfg.lease)
    });

    // Slot arithmetic across incarnations: the fresh session numbers
    // instances from 1, so slot = slot_base + instance.
    let slot_base = base_slot + slots.len() as u64;
    let live_from = slot_base + 1;
    // The frontend is the batching + dissemination layer; the engine is
    // its only sequencer, so `Shared` intake and the `pop_sealed` cursor
    // are the whole proposal policy. Resuming past the durable batch-id
    // high-water mark keeps ids unique across incarnations.
    let mut frontend = ClientFrontend::resume_from(n, cfg.batch_size, next_batch_seed)
        .with_intake(IntakePolicy::Shared);

    let mut started = 0u64;
    let mut applied_through = slot_base;
    let mut open_since: Option<Instant> = None;
    let mut shutting_down = false;
    let mut died = false;
    let mut last_progress = Instant::now();
    let mut sync_reqs: Vec<ConnId> = Vec::new();
    let mut audit_reqs: Vec<ConnId> = Vec::new();
    let mut lease_reqs: Vec<ConnId> = Vec::new();

    loop {
        // 1. Drain intake.
        loop {
            match intake.try_recv() {
                Ok(EngineMsg::Register { conn, tx }) => {
                    conns.insert(conn, tx);
                }
                Ok(EngineMsg::Deregister { conn }) => {
                    conns.remove(&conn);
                }
                Ok(EngineMsg::Submit { conn, request }) => {
                    let _ = handle_resubmit(
                        &mut frontend,
                        &mut meta,
                        &mut dedup,
                        &conns,
                        &mut open_since,
                        &mut dedup_hits,
                        read_path,
                        &mut pending_reads,
                        &mut reads_sequenced,
                        conn,
                        request,
                    );
                }
                Ok(EngineMsg::Sync { conn }) => sync_reqs.push(conn),
                Ok(EngineMsg::Audit { conn }) => audit_reqs.push(conn),
                Ok(EngineMsg::LeaseState { conn }) => lease_reqs.push(conn),
                Ok(EngineMsg::Shutdown) => shutting_down = true,
                Ok(EngineMsg::Die) => died = true,
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
            }
        }
        if died {
            break;
        }

        // 2. Seal a lingering partial batch (immediately when shutting
        // down: nothing more is coming).
        if frontend.open_len() > 0 {
            let lingered = open_since.is_some_and(|s| s.elapsed() >= cfg.linger);
            if shutting_down || lingered {
                frontend.flush();
                open_since = None;
            }
        }
        while let Some(b) = frontend.pop_sealed() {
            ready.push_back(b);
        }

        // 3. Propose into the pipeline window.
        while started - (applied_through - slot_base) < cfg.pipeline_depth {
            let Some(batch) = ready.pop_front() else { break };
            let instance = session.start_instance_recycled(&vec![batch.as_value(); n], &spec);
            started += 1;
            assert_eq!(instance, started, "session instance ids track this incarnation");
            proposals.push(batch);
            last_progress = Instant::now();
        }

        // 4. Pump replica results.
        while let Some(r) = session.try_next_result() {
            results_seen += 1;
            last_progress = Instant::now();
            let row = results.entry(r.instance).or_insert_with(|| vec![None; n]);
            row[r.replica.index()] = r.decision;
            if let Some(d) = r.decision {
                first_decisions.entry(r.instance).or_insert(d);
            }
        }

        // 5. Apply decided slots in log order: materialize, WAL + fsync,
        // only then acknowledge.
        while let Some(d) = first_decisions.get(&(applied_through - slot_base + 1)).copied() {
            applied_through += 1;
            let slot = applied_through;
            let batch = BatchId::from_value(d.value);
            if !applied_batches.insert(batch) {
                duplicate_applies += 1;
                continue;
            }
            let content = frontend.batch(batch).expect("decided batches were disseminated");
            let mut acks = Vec::with_capacity(content.commands.len());
            let mut targets = Vec::with_capacity(content.commands.len());
            for cmd in &content.commands {
                let m = meta.remove(&cmd.id).expect("every batched command has metadata");
                let outcome = match m.op {
                    KvOp::Put { key, value } => {
                        store.insert(key, value);
                        Outcome::Put { slot }
                    }
                    KvOp::Get { key } => Outcome::Get { slot, value: store.get(&key).copied() },
                };
                let response = Response { request: m.request, outcome };
                dedup.insert((m.client, m.request), DedupState::Applied(response));
                targets.push((m.conn, response));
                acks.push(AckRecord { client: m.client, request: m.request, op: m.op, response });
                committed_commands += 1;
            }
            let rec = SlotRecord { slot, batch, commands: acks };
            if let Some(du) = durable.as_mut() {
                // The slot-boundary durability point: record + fsync
                // before any acknowledgement can escape.
                du.wal.append(&rec).expect("wal append");
                du.wal.sync().expect("wal fsync at the slot boundary");
            }
            for (conn, response) in targets {
                if let Some(tx) = conns.get(&conn) {
                    let _ = tx.send(Outbound::Ack(response));
                }
            }
            slots.push(rec);

            // Checkpoint: snapshot, then prefix-truncate the WAL and the
            // in-memory slot history.
            if let Some(du) = durable.as_mut() {
                if du.every > 0 && applied_through - base_slot >= du.every {
                    let snap = Snapshot {
                        applied_through,
                        next_batch: frontend.next_batch_id(),
                        committed: committed_commands,
                        store: store.clone(),
                        sessions: dedup_sessions(&dedup),
                    };
                    snap.write_to(&du.snap_path).expect("checkpoint snapshot write");
                    du.wal.reset().expect("wal prefix truncation");
                    // Fold the fast reads alongside: verify them against
                    // the history being dropped, latch any mismatch, and
                    // clear — retained records always postdate the last
                    // checkpoint, so the final audit replays them against
                    // the retained slots alone.
                    folded_fast_reads += fast_read_records.len() as u64;
                    fast_read_mismatches +=
                        verify_fast_reads(base_slot, &base_store, &slots, &fast_read_records);
                    fast_read_records.clear();
                    base_slot = applied_through;
                    base_next_batch = snap.next_batch;
                    base_commands = committed_commands;
                    base_store.clone_from(&snap.store);
                    base_sessions = snap.sessions;
                    slots.clear();
                }
            }
        }

        // 5a. The read ladder: lease upkeep, then serve every pending
        // read at the applied frontier — lease read when healthy, quorum
        // read after an attest round, sequenced read at the bottom.
        if let Some(ls) = lease_state.as_mut() {
            let now = Instant::now();
            if ls.renew_due(now) {
                for (agent, frame) in agents.iter_mut().zip(ls.acquire_frames(now)) {
                    let msg = LeaseFrame::decode(&frame).expect("own acquire frame decodes");
                    let reply = agent.handle(&msg, now).expect("replica handles acquire");
                    ls.absorb(&LeaseFrame::decode(&reply).expect("replica reply decodes"));
                }
            }
        }
        if !pending_reads.is_empty() {
            let now = Instant::now();
            let lease_ok = read_path == ReadPath::Lease
                && lease_state.as_ref().is_some_and(|l| l.read_allowed(now));
            let attested = !lease_ok
                && lease_state.as_mut().is_some_and(|ls| {
                    // Ladder step 2: one attest round re-certifies
                    // freshness for this whole drain batch.
                    let mut vouches = 0usize;
                    for (agent, frame) in agents.iter_mut().zip(ls.attest_frames()) {
                        let msg = LeaseFrame::decode(&frame).expect("own attest frame decodes");
                        let reply = agent.handle(&msg, now).expect("replica handles attest");
                        if matches!(
                            LeaseFrame::decode(&reply).expect("replica vouch decodes"),
                            LeaseFrame::Vouch { valid: true, .. }
                        ) {
                            vouches += 1;
                        }
                    }
                    vouches >= cfg.system.quorum()
                });
            if lease_ok || attested {
                while let Some(p) = pending_reads.pop_front() {
                    let value = store.get(&p.key).copied();
                    let response = Response {
                        request: p.request,
                        outcome: Outcome::Read { index: applied_through, value },
                    };
                    dedup.insert((p.client, p.request), DedupState::Applied(response));
                    if let Some(tx) = conns.get(&p.conn) {
                        let _ = tx.send(Outbound::Ack(response));
                    }
                    fast_read_records.push(FastReadRecord {
                        client: p.client,
                        request: p.request,
                        key: p.key,
                        index: applied_through,
                        epoch: lease_epoch,
                        attested: !lease_ok,
                        value,
                    });
                    if lease_ok {
                        reads_lease += 1;
                    } else {
                        reads_quorum += 1;
                    }
                }
            } else {
                // Ladder bottom: no lease, no quorum — sequence the
                // reads through the log like the pre-lease service.
                while let Some(p) = pending_reads.pop_front() {
                    dedup.remove(&(p.client, p.request));
                    let request = Request {
                        client: p.client,
                        request: p.request,
                        op: KvOp::Get { key: p.key },
                    };
                    let _ = handle_resubmit(
                        &mut frontend,
                        &mut meta,
                        &mut dedup,
                        &conns,
                        &mut open_since,
                        &mut dedup_hits,
                        ReadPath::Sequenced,
                        &mut pending_reads,
                        &mut reads_sequenced,
                        p.conn,
                        request,
                    );
                }
            }
        }

        // 5b. Serve state transfers and audits against the just-applied
        // state (a rejoining replica gets checkpoint + catch-up records;
        // an auditor gets the replay verdict once the engine quiesces).
        for conn in sync_reqs.drain(..) {
            let Some(tx) = conns.get(&conn) else { continue };
            let snap = Snapshot {
                applied_through: base_slot,
                next_batch: base_next_batch,
                committed: base_commands,
                store: base_store.clone(),
                sessions: base_sessions.clone(),
            };
            let blob = snap.to_framed_bytes();
            const CHUNK: usize = 48 * 1024;
            let total = u32::try_from(blob.chunks(CHUNK).count().max(1)).expect("chunk count");
            for (i, chunk) in blob.chunks(CHUNK).enumerate() {
                let frame = SyncFrame::SnapshotChunk {
                    index: u32::try_from(i).expect("chunk index"),
                    total,
                    bytes: chunk.to_vec(),
                };
                let _ = tx.send(Outbound::Control(frame.encode()));
            }
            for rec in &slots {
                let mut bytes = Vec::new();
                crate::wal::encode_record(rec, &mut bytes);
                let _ = tx.send(Outbound::Control(SyncFrame::Record { bytes }.encode()));
            }
            let _ = tx.send(Outbound::Control(SyncFrame::Done { applied_through }.encode()));
        }
        for conn in lease_reqs.drain(..) {
            let Some(tx) = conns.get(&conn) else { continue };
            let now = Instant::now();
            let status = LeaseStatus {
                mode: read_path.as_wire(),
                epoch: lease_epoch,
                healthy: lease_state.as_ref().is_some_and(|l| l.read_allowed(now)),
                grants: u32::try_from(lease_state.as_ref().map_or(0, |l| l.healthy_grants(now)))
                    .unwrap_or(u32::MAX),
                read_index: applied_through,
                reads_lease,
                reads_quorum,
                reads_sequenced,
            };
            let _ = tx.send(Outbound::Control(status.encode()));
        }
        for conn in audit_reqs.drain(..) {
            let Some(tx) = conns.get(&conn) else { continue };
            let quiesced = started == applied_through - slot_base
                && results_seen == started * n as u64
                && frontend.open_len() == 0
                && ready.is_empty()
                && pending_reads.is_empty();
            let ok = quiesced && {
                let audit = ServiceAudit {
                    system: cfg.system,
                    base_slot,
                    base_store: base_store.clone(),
                    base_sessions: base_sessions.clone(),
                    base_commands,
                    live_from,
                    slots: slots.clone(),
                    proposals: proposals.clone(),
                    replica_decisions: results.values().cloned().collect(),
                    final_store: store.clone(),
                    committed_commands,
                    dedup_hits,
                    duplicate_applies,
                    fast_reads: fast_read_records.clone(),
                    folded_fast_reads,
                    fast_read_mismatches,
                    lease_epoch,
                };
                audit.check().is_ok()
            };
            let summary = AuditSummary {
                complete: quiesced,
                ok,
                slots: applied_through,
                committed: committed_commands,
                dedup_hits,
                fast_reads: reads_lease + reads_quorum,
                lease_epoch,
            };
            let _ = tx.send(Outbound::Control(summary.encode()));
        }

        // 6. Exit once shutdown has drained everything.
        let drained = shutting_down
            && frontend.open_len() == 0
            && ready.is_empty()
            && pending_reads.is_empty()
            && applied_through - slot_base == started
            && results_seen == started * n as u64;
        if drained {
            break;
        }

        // 7. Watchdog + idle strategy: park briefly on the intake
        // channel (new work wakes us); pending consensus results bound
        // the nap so the apply path stays hot.
        if started > applied_through - slot_base || results_seen < started * n as u64 {
            assert!(
                last_progress.elapsed() < cfg.stall_timeout,
                "engine stalled: {} instances in flight, no replica progress for {:?}",
                started - (applied_through - slot_base),
                cfg.stall_timeout
            );
            if let Some(r) = session.next_result_timeout(Duration::from_micros(200)) {
                results_seen += 1;
                last_progress = Instant::now();
                let row = results.entry(r.instance).or_insert_with(|| vec![None; n]);
                row[r.replica.index()] = r.decision;
                if let Some(d) = r.decision {
                    first_decisions.entry(r.instance).or_insert(d);
                }
            }
        } else if !shutting_down {
            let nap = if frontend.open_len() > 0 {
                cfg.linger.min(Duration::from_millis(1))
            } else {
                Duration::from_millis(2)
            };
            match intake.recv_timeout(nap) {
                Ok(EngineMsg::Register { conn, tx }) => {
                    conns.insert(conn, tx);
                }
                Ok(EngineMsg::Deregister { conn }) => {
                    conns.remove(&conn);
                }
                Ok(EngineMsg::Submit { conn, request }) => {
                    // Re-enqueue through the fast path next iteration to
                    // keep the dedup logic in one place.
                    let _ = handle_resubmit(
                        &mut frontend,
                        &mut meta,
                        &mut dedup,
                        &conns,
                        &mut open_since,
                        &mut dedup_hits,
                        read_path,
                        &mut pending_reads,
                        &mut reads_sequenced,
                        conn,
                        request,
                    );
                }
                // Control requests defer to the next iteration's batched
                // handling (sync_reqs/audit_reqs outlive the iteration).
                Ok(EngineMsg::Sync { conn }) => sync_reqs.push(conn),
                Ok(EngineMsg::Audit { conn }) => {
                    audit_reqs.push(conn);
                }
                Ok(EngineMsg::LeaseState { conn }) => lease_reqs.push(conn),
                Ok(EngineMsg::Shutdown) => shutting_down = true,
                Ok(EngineMsg::Die) => died = true,
                Err(_) => {}
            }
            if died {
                break;
            }
        }
    }

    // A clean shutdown checkpoints so a restart recovers from the
    // snapshot alone; a Die exits with whatever the last fsync holds.
    if !died {
        if let Some(du) = durable.as_mut() {
            let snap = Snapshot {
                applied_through,
                next_batch: frontend.next_batch_id(),
                committed: committed_commands,
                store: store.clone(),
                sessions: dedup_sessions(&dedup),
            };
            snap.write_to(&du.snap_path).expect("shutdown snapshot write");
            du.wal.reset().expect("shutdown wal truncation");
        }
    }

    let replica_decisions: Vec<Vec<Option<Decision>>> = results.into_values().collect();
    ServiceAudit {
        system: cfg.system,
        base_slot,
        base_store,
        base_sessions,
        base_commands,
        live_from,
        slots,
        proposals,
        replica_decisions,
        final_store: store,
        committed_commands,
        dedup_hits,
        duplicate_applies,
        fast_reads: fast_read_records,
        folded_fast_reads,
        fast_read_mismatches,
        lease_epoch,
    }
}

/// The submit path, shared by the drain loop and the idle `recv_timeout`
/// arm (one dedup implementation, two call sites).
#[allow(clippy::too_many_arguments)]
fn handle_resubmit(
    frontend: &mut ClientFrontend,
    meta: &mut HashMap<CommandId, CmdMeta>,
    dedup: &mut HashMap<(ClientId, RequestId), DedupState>,
    conns: &HashMap<ConnId, Sender<Outbound>>,
    open_since: &mut Option<Instant>,
    dedup_hits: &mut u64,
    read_path: ReadPath,
    pending_reads: &mut VecDeque<PendingRead>,
    reads_sequenced: &mut u64,
    conn: ConnId,
    request: Request,
) -> bool {
    let key = (request.client, request.request);
    match dedup.get_mut(&key) {
        Some(DedupState::Applied(resp)) => {
            *dedup_hits += 1;
            if let Some(tx) = conns.get(&conn) {
                let _ = tx.send(Outbound::Ack(*resp));
            }
            false
        }
        Some(DedupState::InFlight(cid)) => {
            *dedup_hits += 1;
            if let Some(m) = meta.get_mut(cid) {
                m.conn = conn;
            }
            false
        }
        Some(DedupState::PendingRead) => {
            // A retry of a read still waiting on the ladder: re-target
            // where its eventual ack will be delivered.
            *dedup_hits += 1;
            if let Some(p) = pending_reads
                .iter_mut()
                .find(|p| p.client == request.client && p.request == request.request)
            {
                p.conn = conn;
            }
            false
        }
        None => {
            if read_path != ReadPath::Sequenced {
                if let KvOp::Get { key: k } = request.op {
                    // Fast-read candidate: park it on the read ladder
                    // instead of occupying a log slot. Step 5a serves or
                    // demotes it every iteration, so it never starves.
                    pending_reads.push_back(PendingRead {
                        conn,
                        client: request.client,
                        request: request.request,
                        key: k,
                    });
                    dedup.insert(key, DedupState::PendingRead);
                    return true;
                }
            }
            if matches!(request.op, KvOp::Get { .. }) {
                *reads_sequenced += 1;
            }
            let cid = frontend.submit(request.op.to_payload());
            meta.insert(
                cid,
                CmdMeta { conn, client: request.client, request: request.request, op: request.op },
            );
            dedup.insert(key, DedupState::InFlight(cid));
            if frontend.open_len() == 1 {
                *open_since = Some(Instant::now());
            }
            true
        }
    }
}
