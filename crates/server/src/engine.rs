//! The replicated service engine: one shard-multiplexing event loop
//! from intake to ack.
//!
//! The engine owns the service's entire command path. Requests arrive
//! from connections (socket readers or in-process [`crate::LocalKv`]
//! sessions) on an intake channel; the engine's driver thread routes
//! each request to the shard group owning its key (see the
//! [sharding](#sharded-log-groups) section) and, per shard,
//!
//! 1. **deduplicates** each `(ClientId, RequestId)` against the decided
//!    log — an applied request is re-acknowledged from the cache, an
//!    in-flight one is re-targeted to the newest connection, only a
//!    fresh one enters a batch (the exactly-once contract);
//! 2. **batches** fresh commands through the log crate's
//!    [`ClientFrontend`] (sealed at `batch_size`, or by the linger timer
//!    so a lone request never waits for a full batch);
//! 3. **pipelines** consensus: up to `pipeline_depth` instances of
//!    `A_{t+2}` (round-2 fast path) race on one reusable
//!    [`indulgent_runtime::Session`], every replica proposing the same
//!    sealed batch id (a live service has one in-process sequencer, so
//!    shared proposals make double-choosing impossible by construction —
//!    the audit still checks it);
//! 4. **applies** decided slots in order: materializes the store,
//!    computes each command's response from the store state at its slot,
//!    persists the slot to the write-ahead log ([`crate::wal`]) and
//!    `fdatasync`s it **before** any acknowledgement leaves, records the
//!    ack in the dedup cache, and pushes it to the submitting
//!    connection.
//!
//! # Sharded log groups
//!
//! Single-key commands on different keys never need a shared total
//! order, so the keyspace is partitioned across `shards` independent
//! log pipelines by the fixed [`ShardRouter`] hash. Each shard owns a
//! full stack — its own [`ClientFrontend`] batching, slot space, store
//! slice, dedup table, read ladder, WAL + snapshot subdirectory, and
//! lease — but all shards multiplex over the *one* replica session, so
//! S shards share one worker pool instead of spawning S of them.
//! Session instance ids are global; the driver keeps a routing table
//! from instance id to `(shard, local instance)` and feeds each replica
//! result back to the shard that proposed it. Acks carry the owning
//! shard: the linearization point is `(shard, slot)`, and per-connection
//! session order is per-shard slot monotonicity. Exactly-once dedup is
//! untouched by sharding because a `(ClientId, RequestId)` pair names
//! one key, and a key always routes to the same shard. Cross-shard
//! operations (multi-key transactions) are out of scope — nothing
//! orders two shards' logs against each other.
//!
//! # Crash recovery
//!
//! With a [`DurabilityConfig`], the fault model widens from crash-stop
//! to crash-*recovery*. Every applied slot is WAL-logged before it is
//! acknowledged, and every `snapshot_every` slots the engine checkpoints
//! — snapshot (store + session dedup table + applied-through + batch-id
//! high-water mark) written atomically, then the WAL and the in-memory
//! slot history prefix-truncated. A restarted engine re-hydrates from
//! snapshot + WAL replay: the store resumes, *sessions resume* (a retry
//! of a pre-crash request is still answered from the cache — exactly
//! once survives the restart), and new consensus instances map onto log
//! slots past the recovered prefix (`slot = recovered_base + instance`,
//! since the fresh [`Session`]'s instance ids restart at 1).
//!
//! # Reads: the lease fast path
//!
//! Writes are always sequenced; reads follow the configured
//! [`ReadPath`]. Under `--reads log` ([`ReadPath::Sequenced`]) a `Get`
//! occupies a slot exactly like a write — the pre-lease behavior. Under
//! [`ReadPath::Lease`] the engine holds a leader lease ([`crate::lease`])
//! and answers `Get`s from its applied store at a *read index* equal to
//! the applied frontier, without a slot, a WAL record, or an fsync;
//! when the lease is suspect it falls down the ladder (quorum-attest
//! read, then sequenced read). Every fast read is recorded as a
//! [`FastReadRecord`] and checked by the audit against the decided-log
//! replay at its read index: a fast read must equal what a sequenced
//! read at that slot would have answered. At every checkpoint the
//! retained records are verified against the history being folded and
//! then dropped (any mismatch is latched and fails every later audit),
//! so the audit spans the whole run even though records do not
//! accumulate without bound.
//!
//! Every acknowledged response is thus computed from (or checked
//! against) the log's total order — linearizability is structural, and
//! [`ServiceAudit::check`] re-verifies it after the fact by replaying
//! the log with independent code and comparing every response byte for
//! byte, across the *combined* pre/post-restart history (the recovered
//! prefix seeds the replay base). Lease epochs are burned to disk
//! before an incarnation serves anything, so the crash-recovery path
//! also covers the lease: a rebooted leader re-acquires under a strictly
//! newer epoch and can never fast-read on the promises made to its
//! previous self.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use indulgent_log::{at_plus2_factory, at_plus2_reset, AtSlot, ClientFrontend, IntakePolicy};
use indulgent_model::{BatchId, ClientId, CommandId, Decision, RequestId, SystemConfig};
use indulgent_obs::{FlightKind, FlightRecorder, Histogram};
use indulgent_runtime::{DelayModel, InstanceSpec, Session};

use crate::lease::{self, LeaderLease, LeaseConfig, ReadPath, ReplicaLeaseAgent};
use crate::proto::{
    AuditSummary, KvOp, LeaseFrame, LeaseStatus, Outcome, Request, Response, StatsReport, SyncFrame,
};
use crate::shard::{shard_dir, ShardRouter, ShardedAudit};
use crate::snapshot::{SessionEntry, Snapshot};
use crate::wal::{Wal, WalTail};

/// Where and how often the engine persists its state.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// The durability *root*: holds the fsynced `shards.manifest`
    /// recording the shard count, and one `shard-<i>/` subdirectory per
    /// shard group, each with its own `wal.log`, `state.snap`, and
    /// `lease.epoch`.
    pub dir: PathBuf,
    /// Checkpoint (snapshot + WAL/in-memory prefix truncation) every
    /// this many applied slots past the last checkpoint; `0` defers the
    /// snapshot to clean shutdown (the WAL alone carries recovery).
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    /// Durability rooted at `dir`, checkpointing every 256 slots.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig { dir: dir.into(), snapshot_every: 256 }
    }

    /// Sets the checkpoint interval (in applied slots; `0` = only at
    /// clean shutdown).
    #[must_use]
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every;
        self
    }
}

/// Sizing and timing of a service engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The replica group (n, t).
    pub system: SystemConfig,
    /// Commands per sealed batch.
    pub batch_size: usize,
    /// Bounded in-flight window of consensus instances.
    pub pipeline_depth: u64,
    /// Per-instance round budget.
    pub max_rounds: u32,
    /// Straggler grace window of the replica session.
    pub grace: Duration,
    /// Replica-to-replica delay model (Instant for a colocated group;
    /// Uniform to emulate a real RTT).
    pub delays: DelayModel,
    /// How long a non-empty partial batch may linger before it is sealed
    /// anyway — bounds the latency a lone request pays for batching.
    pub linger: Duration,
    /// Watchdog: the engine panics if consensus makes no progress for
    /// this long with instances in flight (a wedged service must fail
    /// loudly, not hang a CI job).
    pub stall_timeout: Duration,
    /// WAL + snapshot persistence; `None` runs crash-stop (in-memory
    /// only, the pre-durability behavior).
    pub durability: Option<DurabilityConfig>,
    /// How `Get`s are answered (see [`crate::lease`]); `Sequenced` is
    /// the pre-lease behavior and the `--reads log` escape hatch.
    pub reads: ReadPath,
    /// Lease timing (TTL, renew cadence, safety margin); only consulted
    /// when `reads` is not `Sequenced`.
    pub lease: LeaseConfig,
    /// How many shard groups partition the keyspace. Each shard owns an
    /// independent log pipeline (frontend, slot space, WAL, lease), all
    /// multiplexed over the *one* replica session's worker pool — S
    /// shards do not spawn S thread pools.
    pub shards: usize,
}

impl EngineConfig {
    /// A 5-replica, t = 2 service with service-sized defaults: batches
    /// of 8, pipeline depth 4, instant replica links, 500 µs linger, no
    /// durability.
    ///
    /// # Panics
    ///
    /// Never; the 5/2 majority configuration is valid.
    #[must_use]
    pub fn default_5() -> Self {
        EngineConfig {
            system: SystemConfig::majority(5, 2).expect("5/2 is a valid majority config"),
            batch_size: 8,
            pipeline_depth: 4,
            max_rounds: 60,
            grace: Duration::from_millis(2),
            delays: DelayModel::Instant,
            linger: Duration::from_micros(500),
            stall_timeout: Duration::from_secs(30),
            durability: None,
            reads: ReadPath::Sequenced,
            lease: LeaseConfig::default(),
            shards: 1,
        }
    }

    /// Sets the batch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batches hold at least one command");
        self.batch_size = batch_size;
        self
    }

    /// Sets the pipeline depth.
    #[must_use]
    pub fn with_pipeline_depth(mut self, depth: u64) -> Self {
        assert!(depth >= 1, "pipeline depth is at least 1");
        self.pipeline_depth = depth;
        self
    }

    /// Sets the replica-to-replica delay model.
    #[must_use]
    pub fn with_delays(mut self, delays: DelayModel) -> Self {
        self.delays = delays;
        self
    }

    /// Enables WAL + snapshot durability rooted at `dir` (see
    /// [`DurabilityConfig`] for the checkpoint cadence).
    #[must_use]
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Sets the read path (the `--reads` flag).
    #[must_use]
    pub fn with_reads(mut self, reads: ReadPath) -> Self {
        self.reads = reads;
        self
    }

    /// Sets the lease timing knobs.
    #[must_use]
    pub fn with_lease(mut self, lease: LeaseConfig) -> Self {
        self.lease = lease;
        self
    }

    /// Sets the shard-group count (the `--shards` flag).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or does not fit the wire's `u32`.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "a service runs at least one shard");
        assert!(u32::try_from(shards).is_ok(), "shard count fits the wire format");
        self.shards = shards;
        self
    }
}

/// Identifier of one connection registered with the engine (a socket on
/// the TCP server, or an in-process local session).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId(pub u64);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn{}", self.0)
    }
}

/// What the engine pushes onto a connection's outbound channel.
#[derive(Debug, Clone)]
pub enum Outbound {
    /// A request acknowledgement.
    Ack(Response),
    /// A pre-encoded control frame payload (sync stream, audit reply);
    /// the transport writes it as one frame verbatim.
    Control(Vec<u8>),
}

/// Intake messages from connections to the engine's driver thread.
#[derive(Debug)]
enum EngineMsg {
    Register {
        conn: ConnId,
        tx: Sender<Outbound>,
    },
    Deregister {
        conn: ConnId,
    },
    Submit {
        conn: ConnId,
        request: Request,
    },
    /// Stream one shard's durable state (snapshot + catch-up records) to
    /// `conn`.
    Sync {
        conn: ConnId,
        shard: u32,
    },
    /// Run the replay audit (all shards, cross-shard checks included)
    /// and reply its summary to `conn`.
    Audit {
        conn: ConnId,
    },
    /// Reply one shard's lease / read-path state to `conn`.
    LeaseState {
        conn: ConnId,
        shard: u32,
    },
    /// Reply one shard's metrics scrape ([`StatsReport`]) to `conn`.
    Stats {
        conn: ConnId,
        shard: u32,
    },
    Shutdown,
    /// Hard-crash: exit immediately, no drain, no final snapshot.
    Die,
}

/// A cloneable handle for registering connections with a running engine.
#[derive(Debug, Clone)]
pub struct EngineHandle {
    intake: Sender<EngineMsg>,
    next_conn: Arc<AtomicU64>,
}

impl EngineHandle {
    /// Registers a new connection: returns the submit side and the
    /// outbound stream (acknowledgements and control frames). Dropping
    /// the [`SubmitHandle`] deregisters the connection (responses for
    /// its in-flight requests are dropped unless the client re-targets
    /// them by retrying elsewhere).
    #[must_use]
    pub fn connect(&self) -> (SubmitHandle, Receiver<Outbound>) {
        let conn = ConnId(self.next_conn.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = unbounded();
        // A send failure means the engine already shut down; the submit
        // handle's sends will surface that to the caller.
        let _ = self.intake.send(EngineMsg::Register { conn, tx });
        (SubmitHandle { conn, intake: self.intake.clone() }, rx)
    }
}

/// The submit side of one registered connection.
#[derive(Debug)]
pub struct SubmitHandle {
    conn: ConnId,
    intake: Sender<EngineMsg>,
}

impl SubmitHandle {
    /// This connection's id.
    #[must_use]
    pub fn conn(&self) -> ConnId {
        self.conn
    }

    /// Submits a request; `false` if the engine has shut down.
    pub fn submit(&self, request: Request) -> bool {
        self.intake.send(EngineMsg::Submit { conn: self.conn, request }).is_ok()
    }

    /// Asks the engine to stream one shard's durable state to this
    /// connection as control frames (the per-shard rejoin transfer);
    /// `false` if the engine has shut down. A request naming a shard the
    /// service does not run is dropped (no reply).
    pub fn request_sync(&self, shard: u32) -> bool {
        self.intake.send(EngineMsg::Sync { conn: self.conn, shard }).is_ok()
    }

    /// Asks the engine to run the replay audit and reply a summary
    /// control frame; `false` if the engine has shut down.
    pub fn request_audit(&self) -> bool {
        self.intake.send(EngineMsg::Audit { conn: self.conn }).is_ok()
    }

    /// Asks the engine to reply one shard's [`LeaseStatus`] control
    /// frame — the lease-state observability hook; `false` if the engine
    /// has shut down. A request naming a shard the service does not run
    /// is dropped (no reply).
    pub fn request_lease_state(&self, shard: u32) -> bool {
        self.intake.send(EngineMsg::LeaseState { conn: self.conn, shard }).is_ok()
    }

    /// Asks the engine to reply one shard's [`StatsReport`] control
    /// frame — the metrics-scrape observability hook; `false` if the
    /// engine has shut down. A request naming a shard the service does
    /// not run is dropped (no reply).
    pub fn request_stats(&self, shard: u32) -> bool {
        self.intake.send(EngineMsg::Stats { conn: self.conn, shard }).is_ok()
    }
}

impl Drop for SubmitHandle {
    fn drop(&mut self) {
        let _ = self.intake.send(EngineMsg::Deregister { conn: self.conn });
    }
}

/// One acknowledged command inside a slot, as the engine recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckRecord {
    /// The submitting session.
    pub client: ClientId,
    /// The session's request number.
    pub request: RequestId,
    /// The operation sequenced.
    pub op: KvOp,
    /// The response the engine sent when it applied the slot.
    pub response: Response,
}

/// One applied log slot: the batch that occupied it and the commands it
/// carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotRecord {
    /// The slot (1-based, monotonic across incarnations).
    pub slot: u64,
    /// The decided batch.
    pub batch: BatchId,
    /// The batch's commands in order, with their recorded acks.
    pub commands: Vec<AckRecord>,
}

/// One read served off the log (lease or quorum fast path), as the
/// engine recorded it for the audit: the audit replays the decided log
/// to the record's read index and requires the value to match — a fast
/// read must equal what a sequenced read at that slot would have
/// answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastReadRecord {
    /// The submitting session.
    pub client: ClientId,
    /// The session's request number.
    pub request: RequestId,
    /// The key read.
    pub key: u16,
    /// The read index: the applied frontier at serve time.
    pub index: u64,
    /// The lease epoch the read was served under.
    pub epoch: u64,
    /// `true` if the read needed a quorum attest round (ladder step 2);
    /// `false` for a pure lease read.
    pub attested: bool,
    /// The value answered.
    pub value: Option<u32>,
}

/// Everything a finished service run exposes for verification.
///
/// The audit is the server-side ground truth the load generator's gate
/// runs against: [`check`](ServiceAudit::check) re-derives every
/// response from the decided log with independent replay code and
/// verifies the exactly-once bookkeeping, per-slot replica agreement,
/// and store consistency. With durability, the audit spans incarnations:
/// slots recovered from disk are replayed like live ones, and slots
/// folded into a checkpoint seed the replay base.
#[derive(Debug, Clone)]
pub struct ServiceAudit {
    /// The replica group.
    pub system: SystemConfig,
    /// The shard group this audit covers (its slot space, store slice,
    /// and lease are all shard-local; [`crate::ShardedAudit`] adds the
    /// cross-shard checks).
    pub shard: u32,
    /// Slots `<= base_slot` are folded into the base (checkpointed
    /// before this audit's retained history begins).
    pub base_slot: u64,
    /// The store materialized by the folded slots.
    pub base_store: BTreeMap<u16, u32>,
    /// The session dedup table at the base (acknowledgements the folded
    /// slots produced).
    pub base_sessions: Vec<SessionEntry>,
    /// Commands committed by the folded slots.
    pub base_commands: u64,
    /// The first slot decided by *this incarnation* (slots between
    /// `base_slot + 1` and `live_from - 1` were recovered from the WAL:
    /// they carry full records but no live consensus evidence).
    pub live_from: u64,
    /// The retained slots in log order (`base_slot + 1 ..`).
    pub slots: Vec<SlotRecord>,
    /// The batch id every replica was asked to propose, per live slot
    /// (index 0 = slot `live_from`).
    pub proposals: Vec<BatchId>,
    /// Per-live-slot, per-replica first decisions.
    pub replica_decisions: Vec<Vec<Option<Decision>>>,
    /// The store materialized by the engine at shutdown.
    pub final_store: BTreeMap<u16, u32>,
    /// Commands applied over the service lifetime (folded + retained).
    pub committed_commands: u64,
    /// Requests answered from the dedup cache or re-targeted while in
    /// flight — retries absorbed without a second apply.
    pub dedup_hits: u64,
    /// Slots whose batch was already applied (must be zero; the shared
    /// single-sequencer proposal rule cannot produce one).
    pub duplicate_applies: u64,
    /// Fast reads retained since the last checkpoint, in serve order
    /// (read indices non-decreasing, all within the retained history).
    pub fast_reads: Vec<FastReadRecord>,
    /// Fast reads already verified and folded away at checkpoints.
    pub folded_fast_reads: u64,
    /// Folded fast reads whose checkpoint-time verification failed
    /// (latched: must be zero for the audit to pass).
    pub fast_read_mismatches: u64,
    /// The lease epoch this incarnation served under (0 = leases off;
    /// every fast read must carry exactly this epoch).
    pub lease_epoch: u64,
}

/// A violated service invariant found by [`ServiceAudit::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditViolation {
    /// A replica decided a different value than the canonical one (or
    /// never decided) for a slot.
    SlotDisagreement {
        /// The slot.
        slot: u64,
        /// The offending replica.
        replica: usize,
    },
    /// A slot decided a value that was never proposed for it.
    SlotInvalid {
        /// The slot.
        slot: u64,
    },
    /// A `(client, request)` pair was applied more than once.
    DoubleApply {
        /// The submitting session.
        client: ClientId,
        /// The replayed request number.
        request: RequestId,
    },
    /// A recorded response differs from the log replay's answer.
    ResponseMismatch {
        /// The slot whose replay disagrees.
        slot: u64,
        /// The request whose ack is wrong.
        request: RequestId,
    },
    /// The engine's final store differs from the replayed store.
    StoreDivergence,
    /// The engine counted duplicate applies (defense-in-depth net fired).
    DuplicateApplies {
        /// How many times.
        count: u64,
    },
    /// The retained slots are not contiguous from the base.
    SlotGap {
        /// The slot expected at the gap.
        expected: u64,
        /// The slot found instead.
        found: u64,
    },
    /// A fast read's value differs from the decided-prefix replay at
    /// its read index — the stale-read detector fired.
    StaleFastRead {
        /// The request whose read is stale.
        request: RequestId,
        /// The read index it was served at.
        index: u64,
    },
    /// Fast reads were served with decreasing read indices.
    ReadIndexRegression {
        /// The regressing index.
        index: u64,
        /// The index it regressed below.
        after: u64,
    },
    /// A fast read's index is past the retained history.
    ReadIndexOutOfRange {
        /// The offending read index.
        index: u64,
    },
    /// A fast read was served under the wrong lease epoch (stale
    /// incarnation, or leases off entirely).
    EpochMismatch {
        /// The epoch the read carried.
        epoch: u64,
    },
    /// Checkpoint-time verification of folded fast reads failed.
    FoldedReadMismatches {
        /// How many folded reads failed replay.
        count: u64,
    },
    /// A command or fast read landed on a shard its key does not route
    /// to under the service's [`crate::ShardRouter`].
    ShardRouting {
        /// The shard that served the key.
        shard: u32,
        /// The misrouted key.
        key: u16,
    },
    /// A `(client, request)` pair appears in more than one shard's
    /// history — the cross-shard exactly-once space is not disjoint.
    CrossShardDuplicate {
        /// The submitting session.
        client: ClientId,
        /// The duplicated request number.
        request: RequestId,
    },
    /// A per-shard audit carries the wrong shard label for its position.
    ShardMislabel {
        /// The label the audit carries.
        shard: u32,
        /// The shard it actually sits at.
        expected: u32,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::SlotDisagreement { slot, replica } => {
                write!(f, "replica p{replica} disagrees with the canonical decision of slot {slot}")
            }
            AuditViolation::SlotInvalid { slot } => {
                write!(f, "slot {slot} decided a value that was not proposed for it")
            }
            AuditViolation::DoubleApply { client, request } => {
                write!(f, "{client}/{request} applied more than once")
            }
            AuditViolation::ResponseMismatch { slot, request } => {
                write!(f, "ack of {request} at slot {slot} differs from the log replay")
            }
            AuditViolation::StoreDivergence => {
                write!(f, "engine store differs from the replayed store")
            }
            AuditViolation::DuplicateApplies { count } => {
                write!(f, "{count} duplicate batch applies (safety net fired)")
            }
            AuditViolation::SlotGap { expected, found } => {
                write!(f, "retained history skips from slot {found} where {expected} was expected")
            }
            AuditViolation::StaleFastRead { request, index } => {
                write!(f, "fast read {request} at read-index {index} differs from the log replay")
            }
            AuditViolation::ReadIndexRegression { index, after } => {
                write!(f, "fast read served at read-index {index} after index {after}")
            }
            AuditViolation::ReadIndexOutOfRange { index } => {
                write!(f, "fast read at read-index {index} is past the retained history")
            }
            AuditViolation::EpochMismatch { epoch } => {
                write!(f, "fast read served under unexpected lease epoch {epoch}")
            }
            AuditViolation::FoldedReadMismatches { count } => {
                write!(f, "{count} checkpoint-folded fast reads failed replay verification")
            }
            AuditViolation::ShardRouting { shard, key } => {
                write!(f, "key {key} was served by shard {shard}, which it does not route to")
            }
            AuditViolation::CrossShardDuplicate { client, request } => {
                write!(f, "{client}/{request} appears in more than one shard's history")
            }
            AuditViolation::ShardMislabel { shard, expected } => {
                write!(f, "audit labeled shard {shard} sits at shard position {expected}")
            }
        }
    }
}

impl std::error::Error for AuditViolation {}

impl ServiceAudit {
    /// Verifies the run end to end: per-slot replica agreement and
    /// validity (for the slots this incarnation decided), exactly-once
    /// applies across incarnations, and — by replaying the retained
    /// decided log on top of the checkpointed base with independent code
    /// — that every acknowledged response and the final store are
    /// exactly what the total order dictates. This is the
    /// linearizability argument: all operations (reads included) are
    /// answered from the replayed total order, so acks that match the
    /// replay are linearized at their slots.
    pub fn check(&self) -> Result<(), AuditViolation> {
        if self.duplicate_applies > 0 {
            return Err(AuditViolation::DuplicateApplies { count: self.duplicate_applies });
        }
        if self.fast_read_mismatches > 0 {
            return Err(AuditViolation::FoldedReadMismatches { count: self.fast_read_mismatches });
        }
        // Fast-read metadata: correct epoch, non-decreasing read indices
        // from the base (serve order is linearization order).
        let mut prev_index = self.base_slot;
        for r in &self.fast_reads {
            if self.lease_epoch == 0 || r.epoch != self.lease_epoch {
                return Err(AuditViolation::EpochMismatch { epoch: r.epoch });
            }
            if r.index < prev_index {
                return Err(AuditViolation::ReadIndexRegression {
                    index: r.index,
                    after: prev_index,
                });
            }
            prev_index = r.index;
        }
        // Total order: every replica decided every live slot with the
        // proposed (hence canonical) value.
        for (idx, row) in self.replica_decisions.iter().enumerate() {
            let slot = self.live_from + idx as u64;
            let proposed = self.proposals[idx];
            for (replica, d) in row.iter().enumerate() {
                match d {
                    Some(d) if BatchId::from_value(d.value) == proposed => {}
                    _ => return Err(AuditViolation::SlotDisagreement { slot, replica }),
                }
            }
            // Validity against the retained record (live slots folded by
            // a later checkpoint keep their decision evidence only).
            if slot > self.base_slot {
                let offset = (slot - self.base_slot - 1) as usize;
                let recorded = self.slots.get(offset).map(|s| s.batch);
                if recorded != Some(proposed) {
                    return Err(AuditViolation::SlotInvalid { slot });
                }
            }
        }
        // Exactly-once + replay: rebuild the store from the checkpointed
        // base, slot by slot, and recompute every response.
        let mut store = self.base_store.clone();
        let mut seen: HashSet<(ClientId, RequestId)> = HashSet::new();
        for s in &self.base_sessions {
            if !seen.insert((s.client, s.request)) {
                return Err(AuditViolation::DoubleApply { client: s.client, request: s.request });
            }
        }
        // Fast reads participate in the exactly-once key space: a pair
        // answered off the log can never also occupy a slot.
        for r in &self.fast_reads {
            if !seen.insert((r.client, r.request)) {
                return Err(AuditViolation::DoubleApply { client: r.client, request: r.request });
            }
        }
        // Replay interleaved with the stale-read detector: a fast read
        // at index `i` must equal the store after every slot `<= i`.
        let mut reads = self.fast_reads.iter().peekable();
        while let Some(r) = reads.next_if(|r| r.index == self.base_slot) {
            if store.get(&r.key).copied() != r.value {
                return Err(AuditViolation::StaleFastRead { request: r.request, index: r.index });
            }
        }
        let mut commands = self.base_commands;
        for (expected_slot, rec) in (self.base_slot + 1..).zip(self.slots.iter()) {
            if rec.slot != expected_slot {
                return Err(AuditViolation::SlotGap { expected: expected_slot, found: rec.slot });
            }
            for ack in &rec.commands {
                if !seen.insert((ack.client, ack.request)) {
                    return Err(AuditViolation::DoubleApply {
                        client: ack.client,
                        request: ack.request,
                    });
                }
                let expected = match ack.op {
                    KvOp::Put { key, value } => {
                        store.insert(key, value);
                        Outcome::Put { slot: rec.slot }
                    }
                    KvOp::Get { key } => {
                        Outcome::Get { slot: rec.slot, value: store.get(&key).copied() }
                    }
                };
                let replayed =
                    Response { request: ack.request, shard: self.shard, outcome: expected };
                if replayed != ack.response {
                    return Err(AuditViolation::ResponseMismatch {
                        slot: rec.slot,
                        request: ack.request,
                    });
                }
                commands += 1;
            }
            while let Some(r) = reads.next_if(|r| r.index == rec.slot) {
                if store.get(&r.key).copied() != r.value {
                    return Err(AuditViolation::StaleFastRead {
                        request: r.request,
                        index: r.index,
                    });
                }
            }
        }
        if let Some(r) = reads.next() {
            return Err(AuditViolation::ReadIndexOutOfRange { index: r.index });
        }
        if store != self.final_store || commands != self.committed_commands {
            return Err(AuditViolation::StoreDivergence);
        }
        Ok(())
    }
}

/// Dedup bookkeeping for one `(client, request)` pair.
enum DedupState {
    /// Batched but not yet decided; retries re-target the ack here.
    InFlight(CommandId),
    /// Applied; the cached ack answers every retry. Fast-read acks are
    /// cached too (retry idempotence within the incarnation) but are
    /// not WAL-durable — see the module docs.
    Applied(Response),
    /// A read waiting in the fast-read queue; retries re-target it.
    PendingRead,
}

/// Metadata of one in-flight command, keyed by [`CommandId`].
struct CmdMeta {
    conn: ConnId,
    client: ClientId,
    request: RequestId,
    op: KvOp,
}

/// A read queued for the fast path (lease or quorum), not yet served.
struct PendingRead {
    conn: ConnId,
    client: ClientId,
    request: RequestId,
    key: u16,
}

/// The running service engine: a driver thread owning the replica
/// session, reachable through [`EngineHandle`]s.
#[derive(Debug)]
pub struct KvEngine {
    handle: EngineHandle,
    driver: JoinHandle<ShardedAudit>,
}

impl KvEngine {
    /// Spawns the replica session and the driver thread (recovering from
    /// the durability directory first, if one is configured).
    #[must_use]
    pub fn spawn(config: EngineConfig) -> Self {
        let (intake_tx, intake_rx) = unbounded();
        let handle = EngineHandle { intake: intake_tx, next_conn: Arc::new(AtomicU64::new(1)) };
        let driver = std::thread::spawn(move || drive(&config, &intake_rx));
        KvEngine { handle, driver }
    }

    /// A handle for registering connections.
    #[must_use]
    pub fn handle(&self) -> EngineHandle {
        self.handle.clone()
    }

    /// Shuts the engine down: seals and sequences everything still
    /// queued, waits for all in-flight instances, checkpoints every
    /// shard (when durable), then returns the service-wide audit.
    ///
    /// # Panics
    ///
    /// Panics if the driver thread panicked (e.g. the stall watchdog, or
    /// a boot-time shard-count refusal).
    #[must_use]
    pub fn shutdown(self) -> ShardedAudit {
        let _ = self.handle.intake.send(EngineMsg::Shutdown);
        self.driver.join().expect("engine driver panicked")
    }

    /// Hard-stops the engine like a crash: no drain, no final
    /// checkpoint — the durable state is exactly what the last
    /// slot-boundary fsync left behind. The in-process analog of
    /// `kill -9`, for recovery tests; in-flight commands are lost and
    /// must be replayed by their sessions.
    pub fn kill(self) {
        let _ = self.handle.intake.send(EngineMsg::Die);
        let _ = self.driver.join();
    }
}

/// Persistence handles of a durable engine.
struct Durable {
    wal: Wal,
    snap_path: PathBuf,
    every: u64,
}

/// Collects the Applied half of the dedup table, deterministically
/// ordered — the session table a snapshot persists.
fn dedup_sessions(dedup: &HashMap<(ClientId, RequestId), DedupState>) -> Vec<SessionEntry> {
    let mut sessions: Vec<SessionEntry> = dedup
        .iter()
        .filter_map(|(&(client, request), state)| match state {
            DedupState::Applied(response) => {
                Some(SessionEntry { client, request, response: *response })
            }
            DedupState::InFlight(_) | DedupState::PendingRead => None,
        })
        .collect();
    sessions.sort_by_key(|s| (s.client.0, s.request.0));
    sessions
}

/// Checkpoint-time verification of fast reads against the history about
/// to be folded: replays `base_store` + `slots` and requires every
/// record's value to match the store at its read index. Returns the
/// mismatch count (records whose index falls outside the replayed range
/// count as mismatches — they cannot be verified later, the history is
/// being dropped).
fn verify_fast_reads(
    base_slot: u64,
    base_store: &BTreeMap<u16, u32>,
    slots: &[SlotRecord],
    records: &[FastReadRecord],
) -> u64 {
    let mut store = base_store.clone();
    let mut mismatches = 0u64;
    let mut cursor = 0usize;
    while cursor < records.len() && records[cursor].index == base_slot {
        if store.get(&records[cursor].key).copied() != records[cursor].value {
            mismatches += 1;
        }
        cursor += 1;
    }
    for rec in slots {
        for ack in &rec.commands {
            if let KvOp::Put { key, value } = ack.op {
                store.insert(key, value);
            }
        }
        while cursor < records.len() && records[cursor].index == rec.slot {
            if store.get(&records[cursor].key).copied() != records[cursor].value {
                mismatches += 1;
            }
            cursor += 1;
        }
    }
    mismatches + (records.len() - cursor) as u64
}

/// Routing entry of one in-flight consensus instance. The shared
/// session numbers instances globally across shards, so the driver maps
/// each id back to the shard that proposed it and the shard-local
/// instance number (= slot offset) it occupies.
struct InstanceRoute {
    shard: usize,
    local: u64,
    arrivals: usize,
}

/// Absorbs one replica result into its shard's decision tables. The
/// route entry is dropped once all `n` replicas have reported — the id
/// can never arrive again.
fn absorb_result(
    shards: &mut [ShardState],
    routes: &mut HashMap<u64, InstanceRoute>,
    n: usize,
    r: &indulgent_runtime::ReplicaResult,
) {
    let route = routes.get_mut(&r.instance).expect("replica result routes to a started instance");
    let sh = &mut shards[route.shard];
    sh.results_seen += 1;
    let row = sh.results.entry(route.local).or_insert_with(|| vec![None; n]);
    row[r.replica.index()] = r.decision;
    if let Some(d) = r.decision {
        if let std::collections::btree_map::Entry::Vacant(e) = sh.first_decisions.entry(route.local)
        {
            e.insert(d);
            let now = Instant::now();
            if let Some(sealed) = sh.stats.sealed_at.remove(&route.local) {
                sh.stats.seal_decide.record(nanos(now - sealed));
            }
            sh.stats.decided_at.insert(route.local, now);
            sh.flight.record(
                FlightKind::InstanceDecide,
                route.local,
                BatchId::from_value(d.value).0,
            );
        }
    }
    route.arrivals += 1;
    if route.arrivals == n {
        routes.remove(&r.instance);
    }
}

/// The `server_engine` metric family: process-wide tallies across every
/// shard of every engine in this process (the per-shard view travels in
/// the wire [`StatsReport`] instead).
#[derive(Debug)]
struct EngineMetrics {
    slots_applied: indulgent_obs::Counter,
    commands_applied: indulgent_obs::Counter,
    dedup_hits: indulgent_obs::Counter,
    wal_syncs: indulgent_obs::Counter,
    checkpoints: indulgent_obs::Counter,
    reads_lease: indulgent_obs::Counter,
    reads_quorum: indulgent_obs::Counter,
    reads_demoted: indulgent_obs::Counter,
}

static ENGINE_METRICS: EngineMetrics = EngineMetrics {
    slots_applied: indulgent_obs::Counter::new(),
    commands_applied: indulgent_obs::Counter::new(),
    dedup_hits: indulgent_obs::Counter::new(),
    wal_syncs: indulgent_obs::Counter::new(),
    checkpoints: indulgent_obs::Counter::new(),
    reads_lease: indulgent_obs::Counter::new(),
    reads_quorum: indulgent_obs::Counter::new(),
    reads_demoted: indulgent_obs::Counter::new(),
};

impl indulgent_obs::MetricFamily for EngineMetrics {
    fn name(&self) -> &'static str {
        "server_engine"
    }

    fn emit(&self, sink: &mut dyn indulgent_obs::MetricSink) {
        sink.counter("slots_applied", self.slots_applied.get());
        sink.counter("commands_applied", self.commands_applied.get());
        sink.counter("dedup_hits", self.dedup_hits.get());
        sink.counter("wal_syncs", self.wal_syncs.get());
        sink.counter("checkpoints", self.checkpoints.get());
        sink.counter("reads_lease", self.reads_lease.get());
        sink.counter("reads_quorum", self.reads_quorum.get());
        sink.counter("reads_demoted", self.reads_demoted.get());
    }
}

static REGISTER_ENGINE_METRICS: std::sync::Once = std::sync::Once::new();

fn engine_metrics() -> &'static EngineMetrics {
    REGISTER_ENGINE_METRICS.call_once(|| indulgent_obs::register_family(&ENGINE_METRICS));
    &ENGINE_METRICS
}

/// A duration as histogram-ready nanoseconds.
fn nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// One shard's stage clocks: the latency histograms the wire
/// [`StatsReport`] scrapes, plus the timestamp bookkeeping that feeds
/// them. The histogram record paths are allocation-free; the timestamp
/// maps live on the driver thread's bookkeeping path next to the dedup
/// and routing tables, where the engine already allocates.
struct ShardStats {
    /// Command arrival (first command of an open batch) to batch seal.
    submit_seal: Histogram,
    /// Batch seal to the instance's first decision (queue wait included).
    seal_decide: Histogram,
    /// First decision to apply start.
    decide_apply: Histogram,
    /// Apply start to acknowledgements sent (WAL fsync included).
    apply_ack: Histogram,
    /// WAL fsync durations.
    wal_fsync: Histogram,
    /// Ready-queue depth sampled at each seal.
    seal_depth: Histogram,
    /// Open time of each not-yet-sealed batch, seal (FIFO) order.
    seal_opened: VecDeque<Instant>,
    /// Seal time of each sealed-but-not-started batch, parallel to
    /// `ShardState::ready`.
    ready_since: VecDeque<Instant>,
    /// Seal timestamp of each in-flight instance, keyed by shard-local
    /// instance number.
    sealed_at: HashMap<u64, Instant>,
    /// First-decision timestamp of each decided-but-unapplied instance.
    decided_at: HashMap<u64, Instant>,
}

impl ShardStats {
    fn new() -> ShardStats {
        ShardStats {
            submit_seal: Histogram::new(),
            seal_decide: Histogram::new(),
            decide_apply: Histogram::new(),
            apply_ack: Histogram::new(),
            wal_fsync: Histogram::new(),
            seal_depth: Histogram::new(),
            seal_opened: VecDeque::new(),
            ready_since: VecDeque::new(),
            sealed_at: HashMap::new(),
            decided_at: HashMap::new(),
        }
    }
}

/// One shard group: a full independent service stack — batching
/// frontend, slot space, store slice, dedup table, read ladder, WAL +
/// snapshots, and lease — multiplexed with its siblings over the one
/// shared replica session.
struct ShardState {
    idx: u32,
    frontend: ClientFrontend,
    meta: HashMap<CommandId, CmdMeta>,
    dedup: HashMap<(ClientId, RequestId), DedupState>,
    ready: VecDeque<BatchId>,
    /// First decisions keyed by shard-local instance number (1-based).
    first_decisions: BTreeMap<u64, Decision>,
    /// Per-local-instance, per-replica decisions.
    results: BTreeMap<u64, Vec<Option<Decision>>>,
    results_seen: u64,
    store: BTreeMap<u16, u32>,
    applied_batches: HashSet<BatchId>,
    slots: Vec<SlotRecord>,
    proposals: Vec<BatchId>,
    committed_commands: u64,
    dedup_hits: u64,
    duplicate_applies: u64,
    pending_reads: VecDeque<PendingRead>,
    fast_read_records: Vec<FastReadRecord>,
    folded_fast_reads: u64,
    fast_read_mismatches: u64,
    reads_lease: u64,
    reads_quorum: u64,
    reads_sequenced: u64,
    base_slot: u64,
    base_store: BTreeMap<u16, u32>,
    base_sessions: Vec<SessionEntry>,
    base_commands: u64,
    base_next_batch: u64,
    durable: Option<Durable>,
    lease_epoch: u64,
    agents: Vec<ReplicaLeaseAgent>,
    lease: Option<LeaderLease>,
    /// Slot arithmetic across incarnations: this incarnation's local
    /// instance `i` occupies shard slot `slot_base + i`.
    slot_base: u64,
    live_from: u64,
    started: u64,
    applied_through: u64,
    open_since: Option<Instant>,
    stats: ShardStats,
    /// The black-box event ring, dumped to `flight_path` on checkpoint,
    /// audit violation, panic, or shutdown.
    flight: FlightRecorder,
    /// `--dir/flight-<idx>.log` when durable, `None` otherwise (an
    /// in-memory engine has nowhere durable to leave a recording).
    flight_path: Option<PathBuf>,
}

impl ShardState {
    /// Recovers one shard from its `shard-<idx>/` durability
    /// subdirectory (or boots it fresh without durability): snapshot +
    /// WAL re-hydration, then the lease-epoch burn — exactly the
    /// single-group recovery path, rooted one directory deeper.
    fn recover(idx: u32, cfg: &EngineConfig) -> ShardState {
        let n = cfg.system.n();
        let mut dedup: HashMap<(ClientId, RequestId), DedupState> = HashMap::new();
        let mut store: BTreeMap<u16, u32> = BTreeMap::new();
        let mut applied_batches: HashSet<BatchId> = HashSet::new();
        let mut slots: Vec<SlotRecord> = Vec::new();
        let mut committed_commands = 0u64;
        let mut base_slot = 0u64;
        let mut base_store: BTreeMap<u16, u32> = BTreeMap::new();
        let mut base_sessions: Vec<SessionEntry> = Vec::new();
        let mut base_commands = 0u64;
        let mut base_next_batch = 0u64;
        let mut next_batch_seed = 0u64;
        let flight = FlightRecorder::new(512);
        let durable = cfg.durability.as_ref().map(|d| {
            let dir = shard_dir(&d.dir, idx);
            std::fs::create_dir_all(&dir).expect("shard durability directory is creatable");
            let snap_path = dir.join("state.snap");
            let snap = Snapshot::load(&snap_path)
                .expect("snapshot loads (corruption must fail loudly, not boot empty)")
                .unwrap_or_default();
            base_slot = snap.applied_through;
            base_next_batch = snap.next_batch;
            base_commands = snap.committed;
            base_store.clone_from(&snap.store);
            base_sessions.clone_from(&snap.sessions);
            store = snap.store;
            committed_commands = snap.committed;
            next_batch_seed = snap.next_batch;
            for s in &snap.sessions {
                dedup.insert((s.client, s.request), DedupState::Applied(s.response));
            }
            let (wal, replay) =
                Wal::open(&dir.join("wal.log")).expect("wal replays (torn tails self-repair)");
            assert!(
                !matches!(replay.tail, WalTail::Corrupt { .. }),
                "shard {idx} wal is bit-rotten ({:?}): refusing to serve from damaged state",
                replay.tail
            );
            for rec in replay.records {
                if rec.slot <= base_slot {
                    // Already folded into the snapshot (a crash between
                    // snapshot write and WAL reset leaves this overlap).
                    continue;
                }
                assert_eq!(
                    rec.slot,
                    base_slot + slots.len() as u64 + 1,
                    "wal records are slot-contiguous past the snapshot"
                );
                for ack in &rec.commands {
                    if let KvOp::Put { key, value } = ack.op {
                        store.insert(key, value);
                    }
                    dedup.insert((ack.client, ack.request), DedupState::Applied(ack.response));
                    committed_commands += 1;
                }
                next_batch_seed = next_batch_seed.max(rec.batch.0 + 1);
                applied_batches.insert(rec.batch);
                slots.push(rec);
            }
            flight.record(FlightKind::RecoveredSnapshot, base_slot, snap.committed);
            flight.record(FlightKind::RecoveredWal, slots.len() as u64, 0);
            Durable { wal, snap_path, every: d.snapshot_every }
        });

        // Lease bootstrap: burn a strictly newer epoch to the shard's
        // own directory BEFORE serving anything, so a previous
        // incarnation's grants can never be mistaken for this one's.
        let lease_epoch = if cfg.reads == ReadPath::Sequenced {
            0
        } else if let Some(d) = cfg.durability.as_ref() {
            let dir = shard_dir(&d.dir, idx);
            let epoch =
                lease::load_epoch(&dir).expect("lease epoch loads (corruption fails loudly)") + 1;
            lease::store_epoch(&dir, epoch).expect("lease epoch burns before serving");
            epoch
        } else {
            1
        };
        if lease_epoch > 0 {
            flight.record(FlightKind::EpochBurned, lease_epoch, 0);
        }
        let agents = (0..n)
            .map(|i| ReplicaLeaseAgent::new(u32::try_from(i).expect("replica index")))
            .collect();
        let lease = (lease_epoch > 0).then(|| {
            LeaderLease::new(lease_epoch, lease::fresh_holder(), n, cfg.system.quorum(), cfg.lease)
        });

        let slot_base = base_slot + slots.len() as u64;
        ShardState {
            idx,
            frontend: ClientFrontend::resume_from(n, cfg.batch_size, next_batch_seed)
                .with_intake(IntakePolicy::Shared),
            meta: HashMap::new(),
            dedup,
            ready: VecDeque::new(),
            first_decisions: BTreeMap::new(),
            results: BTreeMap::new(),
            results_seen: 0,
            store,
            applied_batches,
            slots,
            proposals: Vec::new(),
            committed_commands,
            dedup_hits: 0,
            duplicate_applies: 0,
            pending_reads: VecDeque::new(),
            fast_read_records: Vec::new(),
            folded_fast_reads: 0,
            fast_read_mismatches: 0,
            reads_lease: 0,
            reads_quorum: 0,
            reads_sequenced: 0,
            base_slot,
            base_store,
            base_sessions,
            base_commands,
            base_next_batch,
            durable,
            lease_epoch,
            agents,
            lease,
            slot_base,
            live_from: slot_base + 1,
            started: 0,
            applied_through: slot_base,
            open_since: None,
            stats: ShardStats::new(),
            flight,
            flight_path: cfg.durability.as_ref().map(|d| d.dir.join(format!("flight-{idx}.log"))),
        }
    }

    /// Writes the flight recording to `--dir/flight-<idx>.log` (no-op
    /// without durability; best-effort — a failed dump never takes the
    /// engine down with it).
    fn dump_flight(&self) {
        let Some(path) = self.flight_path.as_ref() else { return };
        if let Ok(mut f) = std::fs::File::create(path) {
            let _ = self.flight.dump_to(&mut f);
        }
    }

    /// Consensus instances in flight for this shard.
    fn in_flight(&self) -> u64 {
        self.started - (self.applied_through - self.slot_base)
    }

    /// Nothing queued, in flight, or unreported: the shard is at rest
    /// (drained for shutdown, auditable for the replay check).
    fn quiesced(&self, n: u64) -> bool {
        self.in_flight() == 0
            && self.results_seen == self.started * n
            && self.frontend.open_len() == 0
            && self.ready.is_empty()
            && self.pending_reads.is_empty()
    }

    /// The submit path: exactly-once dedup, fast-read parking, batching.
    /// `read_path` is the caller's rung — the intake passes the
    /// configured path, the read ladder's demotion passes `Sequenced`.
    fn submit(
        &mut self,
        conns: &HashMap<ConnId, Sender<Outbound>>,
        conn: ConnId,
        request: Request,
        read_path: ReadPath,
    ) -> bool {
        let key = (request.client, request.request);
        match self.dedup.get_mut(&key) {
            Some(DedupState::Applied(resp)) => {
                self.dedup_hits += 1;
                engine_metrics().dedup_hits.incr();
                if let Some(tx) = conns.get(&conn) {
                    let _ = tx.send(Outbound::Ack(*resp));
                }
                false
            }
            Some(DedupState::InFlight(cid)) => {
                self.dedup_hits += 1;
                engine_metrics().dedup_hits.incr();
                if let Some(m) = self.meta.get_mut(cid) {
                    m.conn = conn;
                }
                false
            }
            Some(DedupState::PendingRead) => {
                // A retry of a read still waiting on the ladder:
                // re-target where its eventual ack will be delivered.
                self.dedup_hits += 1;
                engine_metrics().dedup_hits.incr();
                if let Some(p) = self
                    .pending_reads
                    .iter_mut()
                    .find(|p| p.client == request.client && p.request == request.request)
                {
                    p.conn = conn;
                }
                false
            }
            None => {
                if read_path != ReadPath::Sequenced {
                    if let KvOp::Get { key: k } = request.op {
                        // Fast-read candidate: park it on the read ladder
                        // instead of occupying a log slot. `serve_reads`
                        // serves or demotes it every iteration, so it
                        // never starves.
                        self.pending_reads.push_back(PendingRead {
                            conn,
                            client: request.client,
                            request: request.request,
                            key: k,
                        });
                        self.dedup.insert(key, DedupState::PendingRead);
                        return true;
                    }
                }
                if matches!(request.op, KvOp::Get { .. }) {
                    self.reads_sequenced += 1;
                }
                // A command entering an empty open batch opens the next
                // batch; its seal clock starts now (sealing is FIFO, so
                // a queue pairs opens to seals even when `submit` itself
                // fill-seals the batch).
                if self.frontend.open_len() == 0 {
                    self.stats.seal_opened.push_back(Instant::now());
                }
                let cid = self.frontend.submit(request.op.to_payload());
                self.meta.insert(
                    cid,
                    CmdMeta {
                        conn,
                        client: request.client,
                        request: request.request,
                        op: request.op,
                    },
                );
                self.dedup.insert(key, DedupState::InFlight(cid));
                if self.frontend.open_len() == 1 {
                    self.open_since = Some(Instant::now());
                }
                true
            }
        }
    }

    /// Seals a lingering partial batch (immediately when shutting down:
    /// nothing more is coming) and moves sealed batches to the ready
    /// queue.
    fn seal_lingering(&mut self, linger: Duration, shutting_down: bool) {
        if self.frontend.open_len() > 0 {
            let lingered = self.open_since.is_some_and(|s| s.elapsed() >= linger);
            if shutting_down || lingered {
                self.frontend.flush();
                self.open_since = None;
            }
        }
        while let Some(b) = self.frontend.pop_sealed() {
            let now = Instant::now();
            if let Some(opened) = self.stats.seal_opened.pop_front() {
                self.stats.submit_seal.record(nanos(now - opened));
            }
            self.ready.push_back(b);
            self.stats.ready_since.push_back(now);
            self.stats.seal_depth.record(self.ready.len() as u64);
        }
    }

    /// Applies decided slots in log order: materialize, WAL + fsync,
    /// only then acknowledge; checkpoints on the shard's own cadence.
    fn apply_decided(&mut self, conns: &HashMap<ConnId, Sender<Outbound>>) {
        while let Some(d) =
            self.first_decisions.get(&(self.applied_through - self.slot_base + 1)).copied()
        {
            let local = self.applied_through - self.slot_base + 1;
            let apply_start = Instant::now();
            if let Some(decided) = self.stats.decided_at.remove(&local) {
                self.stats.decide_apply.record(nanos(apply_start - decided));
            }
            self.applied_through += 1;
            let slot = self.applied_through;
            let batch = BatchId::from_value(d.value);
            if !self.applied_batches.insert(batch) {
                self.duplicate_applies += 1;
                continue;
            }
            let content = self.frontend.batch(batch).expect("decided batches were disseminated");
            let mut acks = Vec::with_capacity(content.commands.len());
            let mut targets = Vec::with_capacity(content.commands.len());
            for cmd in &content.commands {
                let m = self.meta.remove(&cmd.id).expect("every batched command has metadata");
                let outcome = match m.op {
                    KvOp::Put { key, value } => {
                        self.store.insert(key, value);
                        Outcome::Put { slot }
                    }
                    KvOp::Get { key } => {
                        Outcome::Get { slot, value: self.store.get(&key).copied() }
                    }
                };
                let response = Response { request: m.request, shard: self.idx, outcome };
                self.dedup.insert((m.client, m.request), DedupState::Applied(response));
                targets.push((m.conn, response));
                acks.push(AckRecord { client: m.client, request: m.request, op: m.op, response });
                self.committed_commands += 1;
            }
            let rec = SlotRecord { slot, batch, commands: acks };
            if let Some(du) = self.durable.as_mut() {
                // The slot-boundary durability point: record + fsync
                // before any acknowledgement can escape.
                du.wal.append(&rec).expect("wal append");
                let sync_start = Instant::now();
                du.wal.sync().expect("wal fsync at the slot boundary");
                let sync_ns = nanos(sync_start.elapsed());
                self.stats.wal_fsync.record(sync_ns);
                self.flight.record(FlightKind::WalSync, slot, sync_ns);
                engine_metrics().wal_syncs.incr();
            }
            for (conn, response) in targets {
                if let Some(tx) = conns.get(&conn) {
                    let _ = tx.send(Outbound::Ack(response));
                }
            }
            self.stats.apply_ack.record(nanos(apply_start.elapsed()));
            self.flight.record(FlightKind::SlotApplied, slot, rec.commands.len() as u64);
            let metrics = engine_metrics();
            metrics.slots_applied.incr();
            metrics.commands_applied.add(rec.commands.len() as u64);
            self.slots.push(rec);

            // Checkpoint: snapshot, then prefix-truncate the WAL and the
            // in-memory slot history.
            let mut checkpointed = false;
            if let Some(du) = self.durable.as_mut() {
                if du.every > 0 && self.applied_through - self.base_slot >= du.every {
                    checkpointed = true;
                    let snap = Snapshot {
                        applied_through: self.applied_through,
                        next_batch: self.frontend.next_batch_id(),
                        committed: self.committed_commands,
                        store: self.store.clone(),
                        sessions: dedup_sessions(&self.dedup),
                    };
                    snap.write_to(&du.snap_path).expect("checkpoint snapshot write");
                    du.wal.reset().expect("wal prefix truncation");
                    // Fold the fast reads alongside: verify them against
                    // the history being dropped, latch any mismatch, and
                    // clear — retained records always postdate the last
                    // checkpoint.
                    self.folded_fast_reads += self.fast_read_records.len() as u64;
                    self.fast_read_mismatches += verify_fast_reads(
                        self.base_slot,
                        &self.base_store,
                        &self.slots,
                        &self.fast_read_records,
                    );
                    self.fast_read_records.clear();
                    self.base_slot = self.applied_through;
                    self.base_next_batch = snap.next_batch;
                    self.base_commands = self.committed_commands;
                    self.base_store.clone_from(&snap.store);
                    self.base_sessions = snap.sessions;
                    self.slots.clear();
                }
            }
            if checkpointed {
                self.flight.record(FlightKind::Checkpoint, self.applied_through, 0);
                engine_metrics().checkpoints.incr();
                // Refresh the on-disk recording at every checkpoint, so
                // even a kill -9 (uncatchable) leaves a recent black box
                // for the restart-storm artifacts.
                self.dump_flight();
            }
        }
    }

    /// Lease upkeep: renew this shard's lease with its replica agents
    /// when due.
    fn lease_upkeep(&mut self) {
        let mut renewed = false;
        if let Some(ls) = self.lease.as_mut() {
            let now = Instant::now();
            if ls.renew_due(now) {
                for (agent, frame) in self.agents.iter_mut().zip(ls.acquire_frames(now)) {
                    let msg = LeaseFrame::decode(&frame).expect("own acquire frame decodes");
                    let reply = agent.handle(&msg, now).expect("replica handles acquire");
                    ls.absorb(&LeaseFrame::decode(&reply).expect("replica reply decodes"));
                }
                renewed = true;
            }
        }
        if renewed {
            let grants = self.lease.as_ref().map_or(0, |l| l.healthy_grants(Instant::now()));
            self.flight.record(FlightKind::LeaseRenewed, self.lease_epoch, grants as u64);
        }
    }

    /// The read ladder: serve every pending read at this shard's applied
    /// frontier — lease read when healthy, quorum read after an attest
    /// round, sequenced read at the bottom.
    fn serve_reads(
        &mut self,
        conns: &HashMap<ConnId, Sender<Outbound>>,
        quorum: usize,
        read_path: ReadPath,
    ) {
        if self.pending_reads.is_empty() {
            return;
        }
        let now = Instant::now();
        let lease_ok = read_path == ReadPath::Lease
            && self.lease.as_ref().is_some_and(|l| l.read_allowed(now));
        let agents = &mut self.agents;
        let attested = !lease_ok
            && self.lease.as_mut().is_some_and(|ls| {
                // Ladder step 2: one attest round re-certifies freshness
                // for this whole drain batch.
                let mut vouches = 0usize;
                for (agent, frame) in agents.iter_mut().zip(ls.attest_frames()) {
                    let msg = LeaseFrame::decode(&frame).expect("own attest frame decodes");
                    let reply = agent.handle(&msg, now).expect("replica handles attest");
                    if matches!(
                        LeaseFrame::decode(&reply).expect("replica vouch decodes"),
                        LeaseFrame::Vouch { valid: true, .. }
                    ) {
                        vouches += 1;
                    }
                }
                vouches >= quorum
            });
        if lease_ok || attested {
            while let Some(p) = self.pending_reads.pop_front() {
                let value = self.store.get(&p.key).copied();
                let response = Response {
                    request: p.request,
                    shard: self.idx,
                    outcome: Outcome::Read { index: self.applied_through, value },
                };
                self.dedup.insert((p.client, p.request), DedupState::Applied(response));
                if let Some(tx) = conns.get(&p.conn) {
                    let _ = tx.send(Outbound::Ack(response));
                }
                self.fast_read_records.push(FastReadRecord {
                    client: p.client,
                    request: p.request,
                    key: p.key,
                    index: self.applied_through,
                    epoch: self.lease_epoch,
                    attested: !lease_ok,
                    value,
                });
                if lease_ok {
                    self.reads_lease += 1;
                    engine_metrics().reads_lease.incr();
                } else {
                    self.reads_quorum += 1;
                    engine_metrics().reads_quorum.incr();
                }
            }
        } else {
            // Ladder bottom: no lease, no quorum — sequence the reads
            // through the log like the pre-lease service.
            let demoted = self.pending_reads.len() as u64;
            self.flight.record(FlightKind::ReadsDemoted, demoted, self.applied_through);
            engine_metrics().reads_demoted.add(demoted);
            while let Some(p) = self.pending_reads.pop_front() {
                self.dedup.remove(&(p.client, p.request));
                let request =
                    Request { client: p.client, request: p.request, op: KvOp::Get { key: p.key } };
                let _ = self.submit(conns, p.conn, request, ReadPath::Sequenced);
            }
        }
    }

    /// Streams this shard's durable state (checkpoint + catch-up
    /// records) to one connection — the per-shard rejoin transfer.
    fn serve_sync(&self, tx: &Sender<Outbound>) {
        let snap = Snapshot {
            applied_through: self.base_slot,
            next_batch: self.base_next_batch,
            committed: self.base_commands,
            store: self.base_store.clone(),
            sessions: self.base_sessions.clone(),
        };
        let blob = snap.to_framed_bytes();
        const CHUNK: usize = 48 * 1024;
        let total = u32::try_from(blob.chunks(CHUNK).count().max(1)).expect("chunk count");
        for (i, chunk) in blob.chunks(CHUNK).enumerate() {
            let frame = SyncFrame::SnapshotChunk {
                index: u32::try_from(i).expect("chunk index"),
                total,
                bytes: chunk.to_vec(),
            };
            let _ = tx.send(Outbound::Control(frame.encode()));
        }
        for rec in &self.slots {
            let mut bytes = Vec::new();
            crate::wal::encode_record(rec, &mut bytes);
            let _ = tx.send(Outbound::Control(SyncFrame::Record { bytes }.encode()));
        }
        let _ = tx.send(Outbound::Control(
            SyncFrame::Done { applied_through: self.applied_through }.encode(),
        ));
    }

    /// A point-in-time [`LeaseStatus`] dump of this shard.
    fn lease_status(&self, shards: u32, mode: u8) -> LeaseStatus {
        let now = Instant::now();
        LeaseStatus {
            shard: self.idx,
            shards,
            mode,
            epoch: self.lease_epoch,
            healthy: self.lease.as_ref().is_some_and(|l| l.read_allowed(now)),
            grants: u32::try_from(self.lease.as_ref().map_or(0, |l| l.healthy_grants(now)))
                .unwrap_or(u32::MAX),
            read_index: self.applied_through,
            reads_lease: self.reads_lease,
            reads_quorum: self.reads_quorum,
            reads_sequenced: self.reads_sequenced,
        }
    }

    /// A point-in-time [`StatsReport`] scrape of this shard.
    fn stats_report(&self, shards: u32) -> StatsReport {
        StatsReport {
            shard: self.idx,
            shards,
            slots: self.applied_through,
            committed: self.committed_commands,
            dedup_hits: self.dedup_hits,
            reads_lease: self.reads_lease,
            reads_quorum: self.reads_quorum,
            reads_sequenced: self.reads_sequenced,
            submit_seal: self.stats.submit_seal.snapshot(),
            seal_decide: self.stats.seal_decide.snapshot(),
            decide_apply: self.stats.decide_apply.snapshot(),
            apply_ack: self.stats.apply_ack.snapshot(),
            wal_fsync: self.stats.wal_fsync.snapshot(),
            seal_depth: self.stats.seal_depth.snapshot(),
        }
    }

    /// This shard's audit view (cheap clones of the retained history).
    fn audit(&self, system: SystemConfig) -> ServiceAudit {
        ServiceAudit {
            system,
            shard: self.idx,
            base_slot: self.base_slot,
            base_store: self.base_store.clone(),
            base_sessions: self.base_sessions.clone(),
            base_commands: self.base_commands,
            live_from: self.live_from,
            slots: self.slots.clone(),
            proposals: self.proposals.clone(),
            replica_decisions: self.results.values().cloned().collect(),
            final_store: self.store.clone(),
            committed_commands: self.committed_commands,
            dedup_hits: self.dedup_hits,
            duplicate_applies: self.duplicate_applies,
            fast_reads: self.fast_read_records.clone(),
            folded_fast_reads: self.folded_fast_reads,
            fast_read_mismatches: self.fast_read_mismatches,
            lease_epoch: self.lease_epoch,
        }
    }

    /// A clean shutdown checkpoints so a restart recovers from the
    /// snapshot alone.
    fn final_checkpoint(&mut self) {
        if let Some(du) = self.durable.as_mut() {
            let snap = Snapshot {
                applied_through: self.applied_through,
                next_batch: self.frontend.next_batch_id(),
                committed: self.committed_commands,
                store: self.store.clone(),
                sessions: dedup_sessions(&self.dedup),
            };
            snap.write_to(&du.snap_path).expect("shutdown snapshot write");
            du.wal.reset().expect("shutdown wal truncation");
        }
        self.flight.record(FlightKind::Shutdown, self.applied_through, self.committed_commands);
        self.dump_flight();
    }
}

/// The driver thread: the shard-multiplexing event loop described in the
/// module docs.
#[allow(clippy::too_many_lines)]
fn drive(cfg: &EngineConfig, intake: &Receiver<EngineMsg>) -> ShardedAudit {
    let n = cfg.system.n();
    let shard_count = u32::try_from(cfg.shards).expect("shard count fits u32");
    let router = ShardRouter::new(shard_count);

    // Boot refusal: a durable root laid out for a different shard count
    // must not be rehashed silently. A fresh root records its count
    // before any shard serves.
    if let Some(d) = cfg.durability.as_ref() {
        std::fs::create_dir_all(&d.dir).expect("durability root is creatable");
        match crate::shard::load_manifest(&d.dir)
            .expect("shard manifest loads (corruption fails loudly)")
        {
            Some(on_disk) => assert_eq!(
                on_disk, shard_count,
                "refusing to boot: durability root is laid out for {on_disk} shard(s), \
                 engine configured for {shard_count}"
            ),
            None => crate::shard::store_manifest(&d.dir, shard_count)
                .expect("shard manifest burns before any shard serves"),
        }
    }

    // ONE recycling session serves every shard: the worker pool is
    // shared, so S shards add zero threads over a single group. Instance
    // ids are global; `routes` maps them back to shards.
    let mut session: Session<AtSlot> = Session::with_recycler(
        cfg.system,
        cfg.grace,
        at_plus2_factory(cfg.system),
        at_plus2_reset(),
    );
    let spec =
        InstanceSpec { crashes: vec![None; n], delays: cfg.delays, max_rounds: cfg.max_rounds };

    let mut conns: HashMap<ConnId, Sender<Outbound>> = HashMap::new();
    let mut shards: Vec<ShardState> =
        (0..shard_count).map(|i| ShardState::recover(i, cfg)).collect();
    let mut routes: HashMap<u64, InstanceRoute> = HashMap::new();

    let read_path = cfg.reads;
    let mut shutting_down = false;
    let mut died = false;
    let mut last_progress = Instant::now();
    let mut sync_reqs: Vec<(ConnId, u32)> = Vec::new();
    let mut audit_reqs: Vec<ConnId> = Vec::new();
    let mut lease_reqs: Vec<(ConnId, u32)> = Vec::new();
    let mut stats_reqs: Vec<(ConnId, u32)> = Vec::new();
    engine_metrics();

    // The event loop runs under catch_unwind so a panic (the stall
    // watchdog, a broken invariant) leaves each shard's flight recording
    // on disk before propagating — the black box outlives the crash.
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
        // 1. Drain intake, routing each submit to its key's shard.
        loop {
            match intake.try_recv() {
                Ok(EngineMsg::Register { conn, tx }) => {
                    conns.insert(conn, tx);
                }
                Ok(EngineMsg::Deregister { conn }) => {
                    conns.remove(&conn);
                }
                Ok(EngineMsg::Submit { conn, request }) => {
                    let si = router.shard_of(request.op.key()) as usize;
                    let _ = shards[si].submit(&conns, conn, request, read_path);
                }
                Ok(EngineMsg::Sync { conn, shard }) => sync_reqs.push((conn, shard)),
                Ok(EngineMsg::Audit { conn }) => audit_reqs.push(conn),
                Ok(EngineMsg::LeaseState { conn, shard }) => lease_reqs.push((conn, shard)),
                Ok(EngineMsg::Stats { conn, shard }) => stats_reqs.push((conn, shard)),
                Ok(EngineMsg::Shutdown) => shutting_down = true,
                Ok(EngineMsg::Die) => died = true,
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
            }
        }
        if died {
            break;
        }

        // 2 + 3. Per shard: seal lingering batches, then propose into
        // the shard's pipeline window on the shared session.
        for (si, sh) in shards.iter_mut().enumerate() {
            sh.seal_lingering(cfg.linger, shutting_down);
            while sh.in_flight() < cfg.pipeline_depth {
                let Some(batch) = sh.ready.pop_front() else { break };
                let instance = session.start_instance_recycled(&vec![batch.as_value(); n], &spec);
                sh.started += 1;
                // The instance inherits its batch's seal clock: the
                // seal→decide stage covers ready-queue wait + consensus.
                if let Some(sealed) = sh.stats.ready_since.pop_front() {
                    sh.stats.sealed_at.insert(sh.started, sealed);
                }
                sh.flight.record(FlightKind::InstanceStart, sh.started, batch.0);
                routes
                    .insert(instance, InstanceRoute { shard: si, local: sh.started, arrivals: 0 });
                sh.proposals.push(batch);
                last_progress = Instant::now();
            }
        }

        // 4. Pump replica results back to their shards.
        while let Some(r) = session.try_next_result() {
            last_progress = Instant::now();
            absorb_result(&mut shards, &mut routes, n, &r);
        }

        // 5 + 5a. Per shard: apply decided slots, then run the read
        // ladder at the new frontier.
        for sh in &mut shards {
            sh.apply_decided(&conns);
            sh.lease_upkeep();
            sh.serve_reads(&conns, cfg.system.quorum(), read_path);
        }

        // 5b. Serve state transfers, lease probes, and audits against
        // the just-applied state. Requests naming an unknown shard are
        // dropped.
        for (conn, shard) in sync_reqs.drain(..) {
            let Some(tx) = conns.get(&conn) else { continue };
            let Some(sh) = shards.get(shard as usize) else { continue };
            sh.serve_sync(tx);
        }
        for (conn, shard) in lease_reqs.drain(..) {
            let Some(tx) = conns.get(&conn) else { continue };
            let Some(sh) = shards.get(shard as usize) else { continue };
            let status = sh.lease_status(shard_count, read_path.as_wire());
            let _ = tx.send(Outbound::Control(status.encode()));
        }
        for (conn, shard) in stats_reqs.drain(..) {
            let Some(tx) = conns.get(&conn) else { continue };
            let Some(sh) = shards.get(shard as usize) else { continue };
            let report = sh.stats_report(shard_count);
            let _ = tx.send(Outbound::Control(report.encode()));
        }
        for conn in audit_reqs.drain(..) {
            let Some(tx) = conns.get(&conn) else { continue };
            let quiesced = shards.iter().all(|s| s.quiesced(n as u64));
            let ok = quiesced && {
                let audit =
                    ShardedAudit { shards: shards.iter().map(|s| s.audit(cfg.system)).collect() };
                audit.check().is_ok()
            };
            if quiesced && !ok {
                // A failed replay audit ships every shard's black box:
                // the recording is the context the violation lacks.
                for sh in &shards {
                    sh.flight.record(FlightKind::AuditViolation, u64::from(sh.idx), 0);
                    sh.dump_flight();
                }
            }
            let summary = AuditSummary {
                complete: quiesced,
                ok,
                slots: shards.iter().map(|s| s.applied_through).sum(),
                committed: shards.iter().map(|s| s.committed_commands).sum(),
                dedup_hits: shards.iter().map(|s| s.dedup_hits).sum(),
                fast_reads: shards.iter().map(|s| s.reads_lease + s.reads_quorum).sum(),
                lease_epoch: shards[0].lease_epoch,
                shards: shard_count,
            };
            let _ = tx.send(Outbound::Control(summary.encode()));
        }

        // 6. Exit once shutdown has drained every shard.
        if shutting_down && shards.iter().all(|s| s.quiesced(n as u64)) {
            break;
        }

        // 7. Watchdog + idle strategy: park briefly on the intake
        // channel (new work wakes us); pending consensus results bound
        // the nap so the apply path stays hot.
        let busy =
            shards.iter().any(|s| s.in_flight() > 0 || s.results_seen < s.started * n as u64);
        if busy {
            assert!(
                last_progress.elapsed() < cfg.stall_timeout,
                "engine stalled: {} instances in flight, no replica progress for {:?}",
                shards.iter().map(ShardState::in_flight).sum::<u64>(),
                cfg.stall_timeout
            );
            if let Some(r) = session.next_result_timeout(Duration::from_micros(200)) {
                last_progress = Instant::now();
                absorb_result(&mut shards, &mut routes, n, &r);
            }
        } else if !shutting_down {
            let nap = if shards.iter().any(|s| s.frontend.open_len() > 0) {
                cfg.linger.min(Duration::from_millis(1))
            } else {
                Duration::from_millis(2)
            };
            match intake.recv_timeout(nap) {
                Ok(EngineMsg::Register { conn, tx }) => {
                    conns.insert(conn, tx);
                }
                Ok(EngineMsg::Deregister { conn }) => {
                    conns.remove(&conn);
                }
                Ok(EngineMsg::Submit { conn, request }) => {
                    let si = router.shard_of(request.op.key()) as usize;
                    let _ = shards[si].submit(&conns, conn, request, read_path);
                }
                // Control requests defer to the next iteration's batched
                // handling (the request vecs outlive the iteration).
                Ok(EngineMsg::Sync { conn, shard }) => sync_reqs.push((conn, shard)),
                Ok(EngineMsg::Audit { conn }) => audit_reqs.push(conn),
                Ok(EngineMsg::LeaseState { conn, shard }) => lease_reqs.push((conn, shard)),
                Ok(EngineMsg::Stats { conn, shard }) => stats_reqs.push((conn, shard)),
                Ok(EngineMsg::Shutdown) => shutting_down = true,
                Ok(EngineMsg::Die) => died = true,
                Err(_) => {}
            }
            if died {
                break;
            }
        }
    }));
    if let Err(panic) = crashed {
        for sh in &shards {
            sh.flight.record(FlightKind::Panic, 0, 0);
            sh.dump_flight();
        }
        std::panic::resume_unwind(panic);
    }

    // A clean shutdown checkpoints every shard so a restart recovers
    // from the snapshots alone; a Die exits with whatever each shard's
    // last fsync holds.
    if !died {
        for sh in &mut shards {
            sh.final_checkpoint();
        }
    }

    ShardedAudit { shards: shards.iter().map(|s| s.audit(cfg.system)).collect() }
}
