//! The request/response protocol riding the framed transport.
//!
//! One frame carries one message. Requests name their submitter: a
//! `(ClientId, RequestId)` pair is the service-wide exactly-once key
//! (see [`crate::engine`]), so the protocol's retry story is simply
//! "send the same request again" — same pair, same frame — and the
//! service answers with the original acknowledgement.
//!
//! Responses carry the *log slot* the command was sequenced at. Slots
//! are the service's linearization points: acknowledgements with slots
//! let a client (and the load generator's gate) audit that its session
//! order was respected — on one connection, ack slots never decrease.
//!
//! Serialization is a fixed-layout little-endian byte format written by
//! hand: the messages are a handful of integers, and the vendored serde
//! facade intentionally has no byte format, so the service owns its wire
//! surface end to end (matching [`crate::wire`]'s vendored framing).

use std::fmt;

use indulgent_model::{ClientId, RequestId};

/// A key-value operation.
///
/// Both reads and writes are *sequenced through the replicated log*:
/// a `Get` occupies a slot and is answered from the store materialized
/// by all preceding slots, which is what makes every acknowledged
/// response linearizable by construction — the total order is the
/// linearization order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KvOp {
    /// `key := value`.
    Put {
        /// The key written.
        key: u16,
        /// The value stored.
        value: u32,
    },
    /// Read `key`.
    Get {
        /// The key read.
        key: u16,
    },
}

impl KvOp {
    /// Packs the operation into the `u64` command payload that rides the
    /// log's dissemination layer (bit 63 = op kind, bits 32..48 = key,
    /// bits 0..32 = value).
    #[must_use]
    pub fn to_payload(self) -> u64 {
        match self {
            KvOp::Put { key, value } => (1 << 63) | (u64::from(key) << 32) | u64::from(value),
            KvOp::Get { key } => u64::from(key) << 32,
        }
    }

    /// Unpacks a command payload back into the operation.
    #[must_use]
    pub fn from_payload(payload: u64) -> Self {
        let key = ((payload >> 32) & 0xffff) as u16;
        if payload >> 63 == 1 {
            KvOp::Put { key, value: (payload & 0xffff_ffff) as u32 }
        } else {
            KvOp::Get { key }
        }
    }
}

impl fmt::Display for KvOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvOp::Put { key, value } => write!(f, "put {key} := {value}"),
            KvOp::Get { key } => write!(f, "get {key}"),
        }
    }
}

/// A client request: who is asking, which retry-safe request number this
/// is, and what to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The submitting session.
    pub client: ClientId,
    /// The session's monotonic request number (reuse = retry).
    pub request: RequestId,
    /// The operation.
    pub op: KvOp,
}

/// What the service acknowledged for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The write was sequenced at `slot` and applied.
    Put {
        /// The log slot the write occupies.
        slot: u64,
    },
    /// The read was sequenced at `slot`; `value` is the key's value in
    /// the store materialized by all slots before it (`None` = unset).
    Get {
        /// The log slot the read occupies.
        slot: u64,
        /// The value read, if the key was set.
        value: Option<u32>,
    },
}

impl Outcome {
    /// The log slot this outcome was sequenced at.
    #[must_use]
    pub fn slot(self) -> u64 {
        match self {
            Outcome::Put { slot } | Outcome::Get { slot, .. } => slot,
        }
    }
}

/// A service response: the acknowledged request and its outcome.
///
/// Responses are *idempotent*: retries of an applied request receive a
/// byte-identical response replayed from the dedup cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// The request being acknowledged.
    pub request: RequestId,
    /// What happened.
    pub outcome: Outcome,
}

const TAG_REQUEST: u8 = 0x01;
const TAG_RESPONSE: u8 = 0x02;
const OP_PUT: u8 = 0x01;
const OP_GET: u8 = 0x02;
const VAL_NONE: u8 = 0x00;
const VAL_SOME: u8 = 0x01;

/// A malformed protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before the message did.
    Truncated,
    /// An unknown message/op/option tag.
    BadTag(u8),
    /// Bytes left over after a complete message.
    TrailingBytes,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "message truncated"),
            ProtoError::BadTag(t) => write!(f, "unknown tag 0x{t:02x}"),
            ProtoError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Little-endian byte cursor for the fixed-layout message formats.
struct Cursor<'a>(&'a [u8]);

impl Cursor<'_> {
    fn u8(&mut self) -> Result<u8, ProtoError> {
        let (&b, rest) = self.0.split_first().ok_or(ProtoError::Truncated)?;
        self.0 = rest;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take()?))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], ProtoError> {
        if self.0.len() < N {
            return Err(ProtoError::Truncated);
        }
        let (head, rest) = self.0.split_at(N);
        self.0 = rest;
        Ok(head.try_into().expect("split at N"))
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes)
        }
    }
}

impl Request {
    /// Encodes the request as one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        out.push(TAG_REQUEST);
        out.extend_from_slice(&self.client.0.to_le_bytes());
        out.extend_from_slice(&self.request.0.to_le_bytes());
        match self.op {
            KvOp::Put { key, value } => {
                out.push(OP_PUT);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&value.to_le_bytes());
            }
            KvOp::Get { key } => {
                out.push(OP_GET);
                out.extend_from_slice(&key.to_le_bytes());
            }
        }
        out
    }

    /// Decodes one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor(bytes);
        match c.u8()? {
            TAG_REQUEST => {}
            t => return Err(ProtoError::BadTag(t)),
        }
        let client = ClientId(c.u64()?);
        let request = RequestId(c.u64()?);
        let op = match c.u8()? {
            OP_PUT => KvOp::Put { key: c.u16()?, value: c.u32()? },
            OP_GET => KvOp::Get { key: c.u16()? },
            t => return Err(ProtoError::BadTag(t)),
        };
        c.finish()?;
        Ok(Request { client, request, op })
    }
}

impl Response {
    /// Encodes the response as one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        out.push(TAG_RESPONSE);
        out.extend_from_slice(&self.request.0.to_le_bytes());
        match self.outcome {
            Outcome::Put { slot } => {
                out.push(OP_PUT);
                out.extend_from_slice(&slot.to_le_bytes());
            }
            Outcome::Get { slot, value } => {
                out.push(OP_GET);
                out.extend_from_slice(&slot.to_le_bytes());
                match value {
                    Some(v) => {
                        out.push(VAL_SOME);
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    None => out.push(VAL_NONE),
                }
            }
        }
        out
    }

    /// Decodes one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor(bytes);
        match c.u8()? {
            TAG_RESPONSE => {}
            t => return Err(ProtoError::BadTag(t)),
        }
        let request = RequestId(c.u64()?);
        let outcome = match c.u8()? {
            OP_PUT => Outcome::Put { slot: c.u64()? },
            OP_GET => {
                let slot = c.u64()?;
                let value = match c.u8()? {
                    VAL_NONE => None,
                    VAL_SOME => Some(c.u32()?),
                    t => return Err(ProtoError::BadTag(t)),
                };
                Outcome::Get { slot, value }
            }
            t => return Err(ProtoError::BadTag(t)),
        };
        c.finish()?;
        Ok(Response { request, outcome })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        for op in [KvOp::Put { key: 65535, value: u32::MAX }, KvOp::Get { key: 0 }] {
            let r = Request { client: ClientId(u64::MAX), request: RequestId(7), op };
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn response_round_trips() {
        for outcome in [
            Outcome::Put { slot: 1 },
            Outcome::Get { slot: u64::MAX, value: None },
            Outcome::Get { slot: 3, value: Some(u32::MAX) },
        ] {
            let r = Response { request: RequestId(9), outcome };
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn payload_packing_round_trips() {
        for op in [
            KvOp::Put { key: 0, value: 0 },
            KvOp::Put { key: u16::MAX, value: u32::MAX },
            KvOp::Get { key: 12345 },
        ] {
            assert_eq!(KvOp::from_payload(op.to_payload()), op);
        }
        // Puts and gets of the same key pack to distinct payloads.
        assert_ne!(KvOp::Put { key: 3, value: 0 }.to_payload(), KvOp::Get { key: 3 }.to_payload());
    }

    #[test]
    fn malformed_messages_are_rejected() {
        assert_eq!(Request::decode(&[]), Err(ProtoError::Truncated));
        assert_eq!(Request::decode(&[0x77]), Err(ProtoError::BadTag(0x77)));
        let mut ok =
            Request { client: ClientId(1), request: RequestId(2), op: KvOp::Get { key: 3 } }
                .encode();
        ok.push(0);
        assert_eq!(Request::decode(&ok), Err(ProtoError::TrailingBytes));
        ok.truncate(ok.len() - 3);
        assert_eq!(Request::decode(&ok), Err(ProtoError::Truncated));
        assert_eq!(Response::decode(&[TAG_RESPONSE]), Err(ProtoError::Truncated));
    }
}
