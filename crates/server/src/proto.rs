//! The request/response protocol riding the framed transport.
//!
//! One frame carries one message. Requests name their submitter: a
//! `(ClientId, RequestId)` pair is the service-wide exactly-once key
//! (see [`crate::engine`]), so the protocol's retry story is simply
//! "send the same request again" — same pair, same frame — and the
//! service answers with the original acknowledgement.
//!
//! Responses carry the *log slot* the command was sequenced at. Slots
//! are the service's linearization points: acknowledgements with slots
//! let a client (and the load generator's gate) audit that its session
//! order was respected — on one connection, ack slots never decrease.
//!
//! Serialization is a fixed-layout little-endian byte format written by
//! hand: the messages are a handful of integers, and the vendored serde
//! facade intentionally has no byte format, so the service owns its wire
//! surface end to end (matching [`crate::wire`]'s vendored framing).

use std::fmt;

use indulgent_model::{ClientId, RequestId};

/// A key-value operation.
///
/// Both reads and writes are *sequenced through the replicated log*:
/// a `Get` occupies a slot and is answered from the store materialized
/// by all preceding slots, which is what makes every acknowledged
/// response linearizable by construction — the total order is the
/// linearization order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KvOp {
    /// `key := value`.
    Put {
        /// The key written.
        key: u16,
        /// The value stored.
        value: u32,
    },
    /// Read `key`.
    Get {
        /// The key read.
        key: u16,
    },
}

impl KvOp {
    /// Packs the operation into the `u64` command payload that rides the
    /// log's dissemination layer (bit 63 = op kind, bits 32..48 = key,
    /// bits 0..32 = value).
    #[must_use]
    pub fn to_payload(self) -> u64 {
        match self {
            KvOp::Put { key, value } => (1 << 63) | (u64::from(key) << 32) | u64::from(value),
            KvOp::Get { key } => u64::from(key) << 32,
        }
    }

    /// Unpacks a command payload back into the operation.
    #[must_use]
    pub fn from_payload(payload: u64) -> Self {
        let key = ((payload >> 32) & 0xffff) as u16;
        if payload >> 63 == 1 {
            KvOp::Put { key, value: (payload & 0xffff_ffff) as u32 }
        } else {
            KvOp::Get { key }
        }
    }
}

impl fmt::Display for KvOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvOp::Put { key, value } => write!(f, "put {key} := {value}"),
            KvOp::Get { key } => write!(f, "get {key}"),
        }
    }
}

/// A client request: who is asking, which retry-safe request number this
/// is, and what to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The submitting session.
    pub client: ClientId,
    /// The session's monotonic request number (reuse = retry).
    pub request: RequestId,
    /// The operation.
    pub op: KvOp,
}

/// What the service acknowledged for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The write was sequenced at `slot` and applied.
    Put {
        /// The log slot the write occupies.
        slot: u64,
    },
    /// The read was sequenced at `slot`; `value` is the key's value in
    /// the store materialized by all slots before it (`None` = unset).
    Get {
        /// The log slot the read occupies.
        slot: u64,
        /// The value read, if the key was set.
        value: Option<u32>,
    },
}

impl Outcome {
    /// The log slot this outcome was sequenced at.
    #[must_use]
    pub fn slot(self) -> u64 {
        match self {
            Outcome::Put { slot } | Outcome::Get { slot, .. } => slot,
        }
    }
}

/// A service response: the acknowledged request and its outcome.
///
/// Responses are *idempotent*: retries of an applied request receive a
/// byte-identical response replayed from the dedup cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// The request being acknowledged.
    pub request: RequestId,
    /// What happened.
    pub outcome: Outcome,
}

/// Frame tag of a client [`Request`].
pub const TAG_REQUEST: u8 = 0x01;
/// Frame tag of a service [`Response`].
pub const TAG_RESPONSE: u8 = 0x02;
/// Frame tag of a rejoin [`SyncFrame::Request`].
pub const TAG_SYNC_REQUEST: u8 = 0x03;
/// Frame tag of a [`SyncFrame::SnapshotChunk`].
pub const TAG_SYNC_SNAPSHOT: u8 = 0x04;
/// Frame tag of a [`SyncFrame::Record`] catch-up record.
pub const TAG_SYNC_RECORD: u8 = 0x05;
/// Frame tag of [`SyncFrame::Done`].
pub const TAG_SYNC_DONE: u8 = 0x06;
/// Frame tag of an audit request (tag-only message).
pub const TAG_AUDIT_REQUEST: u8 = 0x07;
/// Frame tag of an [`AuditSummary`] reply.
pub const TAG_AUDIT_REPLY: u8 = 0x08;
const OP_PUT: u8 = 0x01;
const OP_GET: u8 = 0x02;
const VAL_NONE: u8 = 0x00;
const VAL_SOME: u8 = 0x01;

/// A malformed protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before the message did.
    Truncated,
    /// An unknown message/op/option tag.
    BadTag(u8),
    /// Bytes left over after a complete message.
    TrailingBytes,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "message truncated"),
            ProtoError::BadTag(t) => write!(f, "unknown tag 0x{t:02x}"),
            ProtoError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Little-endian byte cursor for the fixed-layout message formats.
struct Cursor<'a>(&'a [u8]);

impl Cursor<'_> {
    fn u8(&mut self) -> Result<u8, ProtoError> {
        let (&b, rest) = self.0.split_first().ok_or(ProtoError::Truncated)?;
        self.0 = rest;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take()?))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], ProtoError> {
        if self.0.len() < N {
            return Err(ProtoError::Truncated);
        }
        let (head, rest) = self.0.split_at(N);
        self.0 = rest;
        Ok(head.try_into().expect("split at N"))
    }

    fn bytes(&mut self, n: usize) -> Result<Vec<u8>, ProtoError> {
        if self.0.len() < n {
            return Err(ProtoError::Truncated);
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head.to_vec())
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes)
        }
    }
}

/// The rejoin sync protocol, riding the same framed transport as the
/// request/response traffic.
///
/// A rejoining replica opens an ordinary connection and sends
/// [`SyncFrame::Request`]; the server streams its last checkpoint
/// (chunked under the [`crate::wire::MAX_FRAME`] bound), then every
/// retained WAL record past the checkpoint, then [`SyncFrame::Done`].
/// The receiver persists exactly what a local checkpoint + WAL would
/// hold and boots through the normal disk-recovery path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncFrame {
    /// Ask for a state transfer (`from_slot` is the requester's durable
    /// applied-through, advisory).
    Request {
        /// The requester's own durable applied-through slot.
        from_slot: u64,
    },
    /// One chunk of the framed snapshot bytes, `index` of `total`.
    SnapshotChunk {
        /// 0-based chunk index.
        index: u32,
        /// Total chunk count.
        total: u32,
        /// The chunk bytes.
        bytes: Vec<u8>,
    },
    /// One catch-up slot record (a WAL record payload, checksum-framed).
    Record {
        /// The framed record bytes.
        bytes: Vec<u8>,
    },
    /// End of transfer: the peer's applied-through slot.
    Done {
        /// Every slot `<= applied_through` is covered by the transfer.
        applied_through: u64,
    },
}

impl SyncFrame {
    /// Encodes the frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            SyncFrame::Request { from_slot } => {
                let mut out = Vec::with_capacity(9);
                out.push(TAG_SYNC_REQUEST);
                out.extend_from_slice(&from_slot.to_le_bytes());
                out
            }
            SyncFrame::SnapshotChunk { index, total, bytes } => {
                let mut out = Vec::with_capacity(9 + bytes.len());
                out.push(TAG_SYNC_SNAPSHOT);
                out.extend_from_slice(&index.to_le_bytes());
                out.extend_from_slice(&total.to_le_bytes());
                out.extend_from_slice(bytes);
                out
            }
            SyncFrame::Record { bytes } => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(TAG_SYNC_RECORD);
                out.extend_from_slice(bytes);
                out
            }
            SyncFrame::Done { applied_through } => {
                let mut out = Vec::with_capacity(9);
                out.push(TAG_SYNC_DONE);
                out.extend_from_slice(&applied_through.to_le_bytes());
                out
            }
        }
    }

    /// Decodes one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor(bytes);
        let frame = match c.u8()? {
            TAG_SYNC_REQUEST => SyncFrame::Request { from_slot: c.u64()? },
            TAG_SYNC_SNAPSHOT => {
                let index = c.u32()?;
                let total = c.u32()?;
                let rest = c.bytes(c.0.len())?;
                SyncFrame::SnapshotChunk { index, total, bytes: rest }
            }
            TAG_SYNC_RECORD => SyncFrame::Record { bytes: c.bytes(c.0.len())? },
            TAG_SYNC_DONE => SyncFrame::Done { applied_through: c.u64()? },
            t => return Err(ProtoError::BadTag(t)),
        };
        c.finish()?;
        Ok(frame)
    }
}

/// The tag-only audit request frame payload.
#[must_use]
pub fn audit_request_frame() -> Vec<u8> {
    vec![TAG_AUDIT_REQUEST]
}

/// The engine's answer to an over-the-wire audit request.
///
/// The full linearizability-by-replay check
/// ([`crate::ServiceAudit::check`]) runs on the server, against the
/// combined pre/post-restart history; only the verdict and the headline
/// counters travel back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditSummary {
    /// Whether the engine was quiescent enough to audit (no in-flight
    /// instances or pending replica reports). Retry when `false`.
    pub complete: bool,
    /// The verdict of `ServiceAudit::check` (meaningful when `complete`).
    pub ok: bool,
    /// Slots applied so far (across incarnations).
    pub slots: u64,
    /// Commands committed over the service lifetime.
    pub committed: u64,
    /// Retries absorbed by the dedup layer.
    pub dedup_hits: u64,
}

impl AuditSummary {
    /// Encodes the reply payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(27);
        out.push(TAG_AUDIT_REPLY);
        out.push(u8::from(self.complete));
        out.push(u8::from(self.ok));
        out.extend_from_slice(&self.slots.to_le_bytes());
        out.extend_from_slice(&self.committed.to_le_bytes());
        out.extend_from_slice(&self.dedup_hits.to_le_bytes());
        out
    }

    /// Decodes one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor(bytes);
        match c.u8()? {
            TAG_AUDIT_REPLY => {}
            t => return Err(ProtoError::BadTag(t)),
        }
        let complete = c.u8()? != 0;
        let ok = c.u8()? != 0;
        let slots = c.u64()?;
        let committed = c.u64()?;
        let dedup_hits = c.u64()?;
        c.finish()?;
        Ok(AuditSummary { complete, ok, slots, committed, dedup_hits })
    }
}

impl Request {
    /// Encodes the request as one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        out.push(TAG_REQUEST);
        out.extend_from_slice(&self.client.0.to_le_bytes());
        out.extend_from_slice(&self.request.0.to_le_bytes());
        match self.op {
            KvOp::Put { key, value } => {
                out.push(OP_PUT);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&value.to_le_bytes());
            }
            KvOp::Get { key } => {
                out.push(OP_GET);
                out.extend_from_slice(&key.to_le_bytes());
            }
        }
        out
    }

    /// Decodes one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor(bytes);
        match c.u8()? {
            TAG_REQUEST => {}
            t => return Err(ProtoError::BadTag(t)),
        }
        let client = ClientId(c.u64()?);
        let request = RequestId(c.u64()?);
        let op = match c.u8()? {
            OP_PUT => KvOp::Put { key: c.u16()?, value: c.u32()? },
            OP_GET => KvOp::Get { key: c.u16()? },
            t => return Err(ProtoError::BadTag(t)),
        };
        c.finish()?;
        Ok(Request { client, request, op })
    }
}

impl Response {
    /// Encodes the response as one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        out.push(TAG_RESPONSE);
        out.extend_from_slice(&self.request.0.to_le_bytes());
        match self.outcome {
            Outcome::Put { slot } => {
                out.push(OP_PUT);
                out.extend_from_slice(&slot.to_le_bytes());
            }
            Outcome::Get { slot, value } => {
                out.push(OP_GET);
                out.extend_from_slice(&slot.to_le_bytes());
                match value {
                    Some(v) => {
                        out.push(VAL_SOME);
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    None => out.push(VAL_NONE),
                }
            }
        }
        out
    }

    /// Decodes one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor(bytes);
        match c.u8()? {
            TAG_RESPONSE => {}
            t => return Err(ProtoError::BadTag(t)),
        }
        let request = RequestId(c.u64()?);
        let outcome = match c.u8()? {
            OP_PUT => Outcome::Put { slot: c.u64()? },
            OP_GET => {
                let slot = c.u64()?;
                let value = match c.u8()? {
                    VAL_NONE => None,
                    VAL_SOME => Some(c.u32()?),
                    t => return Err(ProtoError::BadTag(t)),
                };
                Outcome::Get { slot, value }
            }
            t => return Err(ProtoError::BadTag(t)),
        };
        c.finish()?;
        Ok(Response { request, outcome })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        for op in [KvOp::Put { key: 65535, value: u32::MAX }, KvOp::Get { key: 0 }] {
            let r = Request { client: ClientId(u64::MAX), request: RequestId(7), op };
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn response_round_trips() {
        for outcome in [
            Outcome::Put { slot: 1 },
            Outcome::Get { slot: u64::MAX, value: None },
            Outcome::Get { slot: 3, value: Some(u32::MAX) },
        ] {
            let r = Response { request: RequestId(9), outcome };
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn payload_packing_round_trips() {
        for op in [
            KvOp::Put { key: 0, value: 0 },
            KvOp::Put { key: u16::MAX, value: u32::MAX },
            KvOp::Get { key: 12345 },
        ] {
            assert_eq!(KvOp::from_payload(op.to_payload()), op);
        }
        // Puts and gets of the same key pack to distinct payloads.
        assert_ne!(KvOp::Put { key: 3, value: 0 }.to_payload(), KvOp::Get { key: 3 }.to_payload());
    }

    #[test]
    fn malformed_messages_are_rejected() {
        assert_eq!(Request::decode(&[]), Err(ProtoError::Truncated));
        assert_eq!(Request::decode(&[0x77]), Err(ProtoError::BadTag(0x77)));
        let mut ok =
            Request { client: ClientId(1), request: RequestId(2), op: KvOp::Get { key: 3 } }
                .encode();
        ok.push(0);
        assert_eq!(Request::decode(&ok), Err(ProtoError::TrailingBytes));
        ok.truncate(ok.len() - 3);
        assert_eq!(Request::decode(&ok), Err(ProtoError::Truncated));
        assert_eq!(Response::decode(&[TAG_RESPONSE]), Err(ProtoError::Truncated));
    }

    #[test]
    fn sync_frames_round_trip() {
        for frame in [
            SyncFrame::Request { from_slot: 17 },
            SyncFrame::SnapshotChunk { index: 2, total: 5, bytes: vec![1, 2, 3] },
            SyncFrame::SnapshotChunk { index: 0, total: 1, bytes: vec![] },
            SyncFrame::Record { bytes: vec![0xaa; 40] },
            SyncFrame::Done { applied_through: u64::MAX },
        ] {
            assert_eq!(SyncFrame::decode(&frame.encode()).unwrap(), frame);
        }
        assert_eq!(SyncFrame::decode(&[0x7f]), Err(ProtoError::BadTag(0x7f)));
    }

    #[test]
    fn audit_summary_round_trips() {
        let s = AuditSummary { complete: true, ok: false, slots: 9, committed: 72, dedup_hits: 3 };
        assert_eq!(AuditSummary::decode(&s.encode()).unwrap(), s);
        assert_eq!(audit_request_frame(), vec![TAG_AUDIT_REQUEST]);
    }
}
