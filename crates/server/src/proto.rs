//! The request/response protocol riding the framed transport.
//!
//! One frame carries one message. Requests name their submitter: a
//! `(ClientId, RequestId)` pair is the service-wide exactly-once key
//! (see [`crate::engine`]), so the protocol's retry story is simply
//! "send the same request again" — same pair, same frame — and the
//! service answers with the original acknowledgement.
//!
//! Responses carry the *log slot* the command was sequenced at, and the
//! shard group whose log numbered it. `(shard, slot)` is the service's
//! linearization point: each shard owns an independent, disjoint slice
//! of the keyspace with its own totally ordered log, so acknowledgements
//! let a client (and the load generator's gate) audit that its session
//! order was respected *per shard* — on one connection, ack slots for a
//! given shard never decrease.
//!
//! Serialization is a fixed-layout little-endian byte format written by
//! hand: the messages are a handful of integers, and the vendored serde
//! facade intentionally has no byte format, so the service owns its wire
//! surface end to end (matching [`crate::wire`]'s vendored framing).

use std::fmt;

use indulgent_model::{ClientId, RequestId};
use indulgent_obs::{HistogramSnapshot, BUCKETS};

/// A key-value operation.
///
/// Writes are always *sequenced through the replicated log*: a `Put`
/// occupies a slot. Reads come in two flavors at the engine's
/// discretion: a sequenced `Get` occupies a slot like a write
/// ([`Outcome::Get`]), while a lease-protected *fast read* bypasses the
/// log and is answered at a read index ([`Outcome::Read`]) — see
/// [`crate::lease`]. A client sends the same `Get` either way; the
/// outcome tag tells it which path answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KvOp {
    /// `key := value`.
    Put {
        /// The key written.
        key: u16,
        /// The value stored.
        value: u32,
    },
    /// Read `key`.
    Get {
        /// The key read.
        key: u16,
    },
}

impl KvOp {
    /// Packs the operation into the `u64` command payload that rides the
    /// log's dissemination layer (bit 63 = op kind, bits 32..48 = key,
    /// bits 0..32 = value).
    #[must_use]
    pub fn to_payload(self) -> u64 {
        match self {
            KvOp::Put { key, value } => (1 << 63) | (u64::from(key) << 32) | u64::from(value),
            KvOp::Get { key } => u64::from(key) << 32,
        }
    }

    /// Unpacks a command payload back into the operation.
    #[must_use]
    pub fn from_payload(payload: u64) -> Self {
        let key = ((payload >> 32) & 0xffff) as u16;
        if payload >> 63 == 1 {
            KvOp::Put { key, value: (payload & 0xffff_ffff) as u32 }
        } else {
            KvOp::Get { key }
        }
    }

    /// The key the operation addresses — the shard-routing input. Every
    /// operation names exactly one key, which is what makes static
    /// key-to-shard placement sound.
    #[must_use]
    pub fn key(self) -> u16 {
        match self {
            KvOp::Put { key, .. } | KvOp::Get { key } => key,
        }
    }
}

impl fmt::Display for KvOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvOp::Put { key, value } => write!(f, "put {key} := {value}"),
            KvOp::Get { key } => write!(f, "get {key}"),
        }
    }
}

/// A client request: who is asking, which retry-safe request number this
/// is, and what to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The submitting session.
    pub client: ClientId,
    /// The session's monotonic request number (reuse = retry).
    pub request: RequestId,
    /// The operation.
    pub op: KvOp,
}

/// What the service acknowledged for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The write was sequenced at `slot` and applied.
    Put {
        /// The log slot the write occupies.
        slot: u64,
    },
    /// The read was sequenced at `slot`; `value` is the key's value in
    /// the store materialized by all slots before it (`None` = unset).
    Get {
        /// The log slot the read occupies.
        slot: u64,
        /// The value read, if the key was set.
        value: Option<u32>,
    },
    /// The read was served on the lease/quorum fast path, without
    /// occupying a slot: `value` is the key's value in the store
    /// materialized by every slot `<= index`. Linearized after slot
    /// `index` and before slot `index + 1`.
    Read {
        /// The read index (the leader's applied frontier at serve time).
        index: u64,
        /// The value read, if the key was set.
        value: Option<u32>,
    },
}

impl Outcome {
    /// The outcome's linearization point: the log slot a sequenced
    /// command occupies, or the read index of a fast read. Both are
    /// monotone per connection, so the session-order gate treats them
    /// uniformly.
    #[must_use]
    pub fn slot(self) -> u64 {
        match self {
            Outcome::Put { slot } | Outcome::Get { slot, .. } => slot,
            Outcome::Read { index, .. } => index,
        }
    }
}

/// A service response: the acknowledged request and its outcome.
///
/// Responses are *idempotent*: retries of an applied request receive a
/// byte-identical response replayed from the dedup cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// The request being acknowledged.
    pub request: RequestId,
    /// The shard group that sequenced (or fast-served) the request. The
    /// outcome's slot/index lives in this shard's numbering: the
    /// linearization point is `(shard, slot)`.
    pub shard: u32,
    /// What happened.
    pub outcome: Outcome,
}

/// Frame tag of a client [`Request`].
pub const TAG_REQUEST: u8 = 0x01;
/// Frame tag of a service [`Response`].
pub const TAG_RESPONSE: u8 = 0x02;
/// Frame tag of a rejoin [`SyncFrame::Request`].
pub const TAG_SYNC_REQUEST: u8 = 0x03;
/// Frame tag of a [`SyncFrame::SnapshotChunk`].
pub const TAG_SYNC_SNAPSHOT: u8 = 0x04;
/// Frame tag of a [`SyncFrame::Record`] catch-up record.
pub const TAG_SYNC_RECORD: u8 = 0x05;
/// Frame tag of [`SyncFrame::Done`].
pub const TAG_SYNC_DONE: u8 = 0x06;
/// Frame tag of an audit request (tag-only message).
pub const TAG_AUDIT_REQUEST: u8 = 0x07;
/// Frame tag of an [`AuditSummary`] reply.
pub const TAG_AUDIT_REPLY: u8 = 0x08;
/// Frame tag of a [`LeaseFrame::Acquire`] grant/renew request.
pub const TAG_LEASE_ACQUIRE: u8 = 0x09;
/// Frame tag of a [`LeaseFrame::Grant`].
pub const TAG_LEASE_GRANT: u8 = 0x0a;
/// Frame tag of a [`LeaseFrame::Deny`].
pub const TAG_LEASE_DENY: u8 = 0x0b;
/// Frame tag of a [`LeaseFrame::Attest`] quorum-read probe.
pub const TAG_LEASE_ATTEST: u8 = 0x0c;
/// Frame tag of a [`LeaseFrame::Vouch`].
pub const TAG_LEASE_VOUCH: u8 = 0x0d;
/// Frame tag of a lease-state request (tag-only message).
pub const TAG_LEASE_STATE_REQUEST: u8 = 0x0e;
/// Frame tag of a [`LeaseStatus`] reply.
pub const TAG_LEASE_STATE: u8 = 0x0f;
/// Frame tag of a metrics-scrape request addressed to one shard group.
pub const TAG_STATS_REQUEST: u8 = 0x10;
/// Frame tag of a [`StatsReport`] reply.
pub const TAG_STATS: u8 = 0x11;
const OP_PUT: u8 = 0x01;
const OP_GET: u8 = 0x02;
const OP_READ: u8 = 0x03;
const VAL_NONE: u8 = 0x00;
const VAL_SOME: u8 = 0x01;

/// A malformed protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before the message did.
    Truncated,
    /// An unknown message/op/option tag.
    BadTag(u8),
    /// Bytes left over after a complete message.
    TrailingBytes,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "message truncated"),
            ProtoError::BadTag(t) => write!(f, "unknown tag 0x{t:02x}"),
            ProtoError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Little-endian byte cursor for the fixed-layout message formats.
struct Cursor<'a>(&'a [u8]);

impl Cursor<'_> {
    fn u8(&mut self) -> Result<u8, ProtoError> {
        let (&b, rest) = self.0.split_first().ok_or(ProtoError::Truncated)?;
        self.0 = rest;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take()?))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], ProtoError> {
        if self.0.len() < N {
            return Err(ProtoError::Truncated);
        }
        let (head, rest) = self.0.split_at(N);
        self.0 = rest;
        Ok(head.try_into().expect("split at N"))
    }

    fn bytes(&mut self, n: usize) -> Result<Vec<u8>, ProtoError> {
        if self.0.len() < n {
            return Err(ProtoError::Truncated);
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head.to_vec())
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes)
        }
    }
}

/// The rejoin sync protocol, riding the same framed transport as the
/// request/response traffic.
///
/// A rejoining replica opens an ordinary connection and sends
/// [`SyncFrame::Request`]; the server streams its last checkpoint
/// (chunked under the [`crate::wire::MAX_FRAME`] bound), then every
/// retained WAL record past the checkpoint, then [`SyncFrame::Done`].
/// The receiver persists exactly what a local checkpoint + WAL would
/// hold and boots through the normal disk-recovery path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncFrame {
    /// Ask for a state transfer of one shard group (`from_slot` is the
    /// requester's durable applied-through, advisory). A full rejoin
    /// issues one request per shard.
    Request {
        /// The requester's own durable applied-through slot.
        from_slot: u64,
        /// The shard group whose checkpoint + WAL is wanted.
        shard: u32,
    },
    /// One chunk of the framed snapshot bytes, `index` of `total`.
    SnapshotChunk {
        /// 0-based chunk index.
        index: u32,
        /// Total chunk count.
        total: u32,
        /// The chunk bytes.
        bytes: Vec<u8>,
    },
    /// One catch-up slot record (a WAL record payload, checksum-framed).
    Record {
        /// The framed record bytes.
        bytes: Vec<u8>,
    },
    /// End of transfer: the peer's applied-through slot.
    Done {
        /// Every slot `<= applied_through` is covered by the transfer.
        applied_through: u64,
    },
}

impl SyncFrame {
    /// Encodes the frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            SyncFrame::Request { from_slot, shard } => {
                let mut out = Vec::with_capacity(13);
                out.push(TAG_SYNC_REQUEST);
                out.extend_from_slice(&from_slot.to_le_bytes());
                out.extend_from_slice(&shard.to_le_bytes());
                out
            }
            SyncFrame::SnapshotChunk { index, total, bytes } => {
                let mut out = Vec::with_capacity(9 + bytes.len());
                out.push(TAG_SYNC_SNAPSHOT);
                out.extend_from_slice(&index.to_le_bytes());
                out.extend_from_slice(&total.to_le_bytes());
                out.extend_from_slice(bytes);
                out
            }
            SyncFrame::Record { bytes } => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(TAG_SYNC_RECORD);
                out.extend_from_slice(bytes);
                out
            }
            SyncFrame::Done { applied_through } => {
                let mut out = Vec::with_capacity(9);
                out.push(TAG_SYNC_DONE);
                out.extend_from_slice(&applied_through.to_le_bytes());
                out
            }
        }
    }

    /// Decodes one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor(bytes);
        let frame = match c.u8()? {
            TAG_SYNC_REQUEST => SyncFrame::Request { from_slot: c.u64()?, shard: c.u32()? },
            TAG_SYNC_SNAPSHOT => {
                let index = c.u32()?;
                let total = c.u32()?;
                let rest = c.bytes(c.0.len())?;
                SyncFrame::SnapshotChunk { index, total, bytes: rest }
            }
            TAG_SYNC_RECORD => SyncFrame::Record { bytes: c.bytes(c.0.len())? },
            TAG_SYNC_DONE => SyncFrame::Done { applied_through: c.u64()? },
            t => return Err(ProtoError::BadTag(t)),
        };
        c.finish()?;
        Ok(frame)
    }
}

/// The tag-only audit request frame payload.
#[must_use]
pub fn audit_request_frame() -> Vec<u8> {
    vec![TAG_AUDIT_REQUEST]
}

/// The engine's answer to an over-the-wire audit request.
///
/// The full linearizability-by-replay check
/// ([`crate::ServiceAudit::check`]) runs on the server, against the
/// combined pre/post-restart history; only the verdict and the headline
/// counters travel back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditSummary {
    /// Whether the engine was quiescent enough to audit (no in-flight
    /// instances or pending replica reports). Retry when `false`.
    pub complete: bool,
    /// The verdict of `ServiceAudit::check` (meaningful when `complete`).
    pub ok: bool,
    /// Slots applied so far (across incarnations).
    pub slots: u64,
    /// Commands committed over the service lifetime.
    pub committed: u64,
    /// Retries absorbed by the dedup layer.
    pub dedup_hits: u64,
    /// Reads served off the log (lease + quorum fast paths), audited
    /// against the decided-prefix replay.
    pub fast_reads: u64,
    /// The lease epoch the engine is serving under (0 = leases off).
    pub lease_epoch: u64,
    /// How many shard groups the service runs (the audit verdict covers
    /// all of them, cross-shard checks included).
    pub shards: u32,
}

impl AuditSummary {
    /// Encodes the reply payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(47);
        out.push(TAG_AUDIT_REPLY);
        out.push(u8::from(self.complete));
        out.push(u8::from(self.ok));
        out.extend_from_slice(&self.slots.to_le_bytes());
        out.extend_from_slice(&self.committed.to_le_bytes());
        out.extend_from_slice(&self.dedup_hits.to_le_bytes());
        out.extend_from_slice(&self.fast_reads.to_le_bytes());
        out.extend_from_slice(&self.lease_epoch.to_le_bytes());
        out.extend_from_slice(&self.shards.to_le_bytes());
        out
    }

    /// Decodes one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor(bytes);
        match c.u8()? {
            TAG_AUDIT_REPLY => {}
            t => return Err(ProtoError::BadTag(t)),
        }
        let complete = c.u8()? != 0;
        let ok = c.u8()? != 0;
        let slots = c.u64()?;
        let committed = c.u64()?;
        let dedup_hits = c.u64()?;
        let fast_reads = c.u64()?;
        let lease_epoch = c.u64()?;
        let shards = c.u32()?;
        c.finish()?;
        Ok(AuditSummary {
            complete,
            ok,
            slots,
            committed,
            dedup_hits,
            fast_reads,
            lease_epoch,
            shards,
        })
    }
}

/// The leader-lease protocol frames (see [`crate::lease`]), riding the
/// same framed transport as the request/response traffic.
///
/// `Acquire`/`Grant`/`Deny` establish and renew the lease; `Attest`/
/// `Vouch` are the quorum-read fallback's freshness probe (a replica
/// vouches that the named `(holder, epoch)` lease is still the newest
/// promise it has made).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseFrame {
    /// The would-be leader asks a replica to grant (or renew) its lease.
    Acquire {
        /// The requesting leader incarnation.
        holder: u64,
        /// The lease epoch being acquired.
        epoch: u64,
        /// Lease duration in microseconds, measured from the grant.
        ttl_micros: u64,
    },
    /// The replica granted the lease for the frame's TTL.
    Grant {
        /// The granting replica.
        replica: u32,
        /// The epoch granted (echoed).
        epoch: u64,
    },
    /// The replica refused: it already promised a newer lease.
    Deny {
        /// The refusing replica.
        replica: u32,
        /// The newest epoch the replica has promised.
        promised: u64,
    },
    /// Quorum-read probe: is `(holder, epoch)` still your newest promise?
    Attest {
        /// The probing leader incarnation.
        holder: u64,
        /// The epoch being attested.
        epoch: u64,
    },
    /// Reply to [`LeaseFrame::Attest`].
    Vouch {
        /// The vouching replica.
        replica: u32,
        /// The epoch attested (echoed).
        epoch: u64,
        /// Whether the lease is still the replica's newest promise.
        valid: bool,
    },
}

impl LeaseFrame {
    /// Encodes the frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(25);
        match *self {
            LeaseFrame::Acquire { holder, epoch, ttl_micros } => {
                out.push(TAG_LEASE_ACQUIRE);
                out.extend_from_slice(&holder.to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&ttl_micros.to_le_bytes());
            }
            LeaseFrame::Grant { replica, epoch } => {
                out.push(TAG_LEASE_GRANT);
                out.extend_from_slice(&replica.to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            LeaseFrame::Deny { replica, promised } => {
                out.push(TAG_LEASE_DENY);
                out.extend_from_slice(&replica.to_le_bytes());
                out.extend_from_slice(&promised.to_le_bytes());
            }
            LeaseFrame::Attest { holder, epoch } => {
                out.push(TAG_LEASE_ATTEST);
                out.extend_from_slice(&holder.to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            LeaseFrame::Vouch { replica, epoch, valid } => {
                out.push(TAG_LEASE_VOUCH);
                out.extend_from_slice(&replica.to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
                out.push(u8::from(valid));
            }
        }
        out
    }

    /// Decodes one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor(bytes);
        let frame = match c.u8()? {
            TAG_LEASE_ACQUIRE => {
                LeaseFrame::Acquire { holder: c.u64()?, epoch: c.u64()?, ttl_micros: c.u64()? }
            }
            TAG_LEASE_GRANT => LeaseFrame::Grant { replica: c.u32()?, epoch: c.u64()? },
            TAG_LEASE_DENY => LeaseFrame::Deny { replica: c.u32()?, promised: c.u64()? },
            TAG_LEASE_ATTEST => LeaseFrame::Attest { holder: c.u64()?, epoch: c.u64()? },
            TAG_LEASE_VOUCH => {
                LeaseFrame::Vouch { replica: c.u32()?, epoch: c.u64()?, valid: c.u8()? != 0 }
            }
            t => return Err(ProtoError::BadTag(t)),
        };
        c.finish()?;
        Ok(frame)
    }
}

/// The lease-state request frame payload, addressed to one shard group's
/// lease agent.
#[must_use]
pub fn lease_state_request_frame(shard: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(5);
    out.push(TAG_LEASE_STATE_REQUEST);
    out.extend_from_slice(&shard.to_le_bytes());
    out
}

/// Parses the shard a lease-state request addresses. Lenient toward the
/// pre-sharding tag-only frame, which reads as shard 0.
pub fn lease_state_request_shard(bytes: &[u8]) -> Result<u32, ProtoError> {
    let mut c = Cursor(bytes);
    match c.u8()? {
        TAG_LEASE_STATE_REQUEST => {}
        t => return Err(ProtoError::BadTag(t)),
    }
    if c.0.is_empty() {
        return Ok(0);
    }
    let shard = c.u32()?;
    c.finish()?;
    Ok(shard)
}

/// A point-in-time dump of the engine's lease and read-path state —
/// the observability (and CI failure-artifact) surface of the lease
/// subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseStatus {
    /// The shard group this dump describes.
    pub shard: u32,
    /// How many shard groups the service runs (each with its own lease).
    pub shards: u32,
    /// The configured read path: 0 = sequenced, 1 = quorum, 2 = lease.
    pub mode: u8,
    /// The current lease epoch (0 when leases are disabled).
    pub epoch: u64,
    /// Whether the lease is currently healthy (a quorum of unexpired
    /// grants with safety margin).
    pub healthy: bool,
    /// Grants held (healthy or not).
    pub grants: u32,
    /// The current read index (the leader's applied frontier).
    pub read_index: u64,
    /// Reads served on the lease fast path.
    pub reads_lease: u64,
    /// Reads served through the quorum-attest fallback.
    pub reads_quorum: u64,
    /// Reads sequenced through the log (bottom of the ladder).
    pub reads_sequenced: u64,
}

impl LeaseStatus {
    /// Encodes the reply payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(55);
        out.push(TAG_LEASE_STATE);
        out.extend_from_slice(&self.shard.to_le_bytes());
        out.extend_from_slice(&self.shards.to_le_bytes());
        out.push(self.mode);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.push(u8::from(self.healthy));
        out.extend_from_slice(&self.grants.to_le_bytes());
        out.extend_from_slice(&self.read_index.to_le_bytes());
        out.extend_from_slice(&self.reads_lease.to_le_bytes());
        out.extend_from_slice(&self.reads_quorum.to_le_bytes());
        out.extend_from_slice(&self.reads_sequenced.to_le_bytes());
        out
    }

    /// Decodes one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor(bytes);
        match c.u8()? {
            TAG_LEASE_STATE => {}
            t => return Err(ProtoError::BadTag(t)),
        }
        let status = LeaseStatus {
            shard: c.u32()?,
            shards: c.u32()?,
            mode: c.u8()?,
            epoch: c.u64()?,
            healthy: c.u8()? != 0,
            grants: c.u32()?,
            read_index: c.u64()?,
            reads_lease: c.u64()?,
            reads_quorum: c.u64()?,
            reads_sequenced: c.u64()?,
        };
        c.finish()?;
        Ok(status)
    }
}

impl fmt::Display for LeaseStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mode = match self.mode {
            0 => "sequenced",
            1 => "quorum",
            _ => "lease",
        };
        write!(
            f,
            "shard={}/{} reads={mode} epoch={} healthy={} grants={} read_index={} \
             served lease={} quorum={} sequenced={}",
            self.shard,
            self.shards,
            self.epoch,
            self.healthy,
            self.grants,
            self.read_index,
            self.reads_lease,
            self.reads_quorum,
            self.reads_sequenced
        )
    }
}

/// The metrics-scrape request frame payload, addressed to one shard
/// group's engine.
#[must_use]
pub fn stats_request_frame(shard: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(5);
    out.push(TAG_STATS_REQUEST);
    out.extend_from_slice(&shard.to_le_bytes());
    out
}

/// Parses the shard a metrics-scrape request addresses.
pub fn stats_request_shard(bytes: &[u8]) -> Result<u32, ProtoError> {
    let mut c = Cursor(bytes);
    match c.u8()? {
        TAG_STATS_REQUEST => {}
        t => return Err(ProtoError::BadTag(t)),
    }
    let shard = c.u32()?;
    c.finish()?;
    Ok(shard)
}

/// Writes a histogram snapshot: 64 bucket counts, then sum, then max
/// (all `u64` LE). The observation count is not carried — it is the sum
/// of the buckets, recomputed on decode.
fn encode_histogram(out: &mut Vec<u8>, snap: &HistogramSnapshot) {
    for b in &snap.buckets {
        out.extend_from_slice(&b.to_le_bytes());
    }
    out.extend_from_slice(&snap.sum.to_le_bytes());
    out.extend_from_slice(&snap.max.to_le_bytes());
}

fn decode_histogram(c: &mut Cursor<'_>) -> Result<HistogramSnapshot, ProtoError> {
    let mut buckets = [0u64; BUCKETS];
    let mut count = 0u64;
    for b in &mut buckets {
        *b = c.u64()?;
        count += *b;
    }
    Ok(HistogramSnapshot { buckets, count, sum: c.u64()?, max: c.u64()? })
}

/// A point-in-time scrape of one shard group's engine metrics — the
/// wire form of the server-side observability layer (see
/// `indulgent-obs`). Histograms travel as raw bucket counts, so the
/// *client* derives whatever percentiles it wants and cross-shard
/// aggregates merge exactly ([`HistogramSnapshot::merge`]); stage
/// latencies and the WAL fsync are in nanoseconds, the seal-depth
/// histogram counts queued batches sampled at each seal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsReport {
    /// The shard group this scrape describes.
    pub shard: u32,
    /// How many shard groups the service runs.
    pub shards: u32,
    /// Slots applied by this shard's state machine.
    pub slots: u64,
    /// Commands acknowledged (applied, exactly-once).
    pub committed: u64,
    /// Duplicate submissions answered from the dedup cache.
    pub dedup_hits: u64,
    /// Reads served on the lease fast path.
    pub reads_lease: u64,
    /// Reads served through the quorum-attest fallback.
    pub reads_quorum: u64,
    /// Reads sequenced through the log.
    pub reads_sequenced: u64,
    /// Submit→seal: command arrival to its batch sealing (ns).
    pub submit_seal: HistogramSnapshot,
    /// Seal→decide: instance start to its first decision (ns).
    pub seal_decide: HistogramSnapshot,
    /// Decide→apply: decision to state-machine apply (ns).
    pub decide_apply: HistogramSnapshot,
    /// Apply→ack: apply start to acknowledgements sent, fsync included (ns).
    pub apply_ack: HistogramSnapshot,
    /// WAL fsync durations (ns).
    pub wal_fsync: HistogramSnapshot,
    /// Sealed-batch queue depth sampled at each seal.
    pub seal_depth: HistogramSnapshot,
}

impl StatsReport {
    /// The six stage histograms with their wire/JSON names, report order.
    #[must_use]
    pub fn stages(&self) -> [(&'static str, &HistogramSnapshot); 6] {
        [
            ("submit_seal", &self.submit_seal),
            ("seal_decide", &self.seal_decide),
            ("decide_apply", &self.decide_apply),
            ("apply_ack", &self.apply_ack),
            ("wal_fsync", &self.wal_fsync),
            ("seal_depth", &self.seal_depth),
        ]
    }

    /// Folds `other`'s counters and histograms into `self` — the
    /// cross-shard aggregate (`shard` keeps `self`'s value; aggregate
    /// reports conventionally use shard 0).
    pub fn merge(&mut self, other: &StatsReport) {
        self.slots += other.slots;
        self.committed += other.committed;
        self.dedup_hits += other.dedup_hits;
        self.reads_lease += other.reads_lease;
        self.reads_quorum += other.reads_quorum;
        self.reads_sequenced += other.reads_sequenced;
        self.submit_seal.merge(&other.submit_seal);
        self.seal_decide.merge(&other.seal_decide);
        self.decide_apply.merge(&other.decide_apply);
        self.apply_ack.merge(&other.apply_ack);
        self.wal_fsync.merge(&other.wal_fsync);
        self.seal_depth.merge(&other.seal_depth);
    }

    /// An all-zero report for `shard` of `shards` (the merge identity).
    #[must_use]
    pub fn zero(shard: u32, shards: u32) -> Self {
        StatsReport {
            shard,
            shards,
            slots: 0,
            committed: 0,
            dedup_hits: 0,
            reads_lease: 0,
            reads_quorum: 0,
            reads_sequenced: 0,
            submit_seal: HistogramSnapshot::empty(),
            seal_decide: HistogramSnapshot::empty(),
            decide_apply: HistogramSnapshot::empty(),
            apply_ack: HistogramSnapshot::empty(),
            wal_fsync: HistogramSnapshot::empty(),
            seal_depth: HistogramSnapshot::empty(),
        }
    }

    /// Encodes the reply payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        // 1 tag + 2 u32 + 6 u64 + 6 histograms of (64 + 2) u64.
        let mut out = Vec::with_capacity(1 + 8 + 48 + 6 * (BUCKETS + 2) * 8);
        out.push(TAG_STATS);
        out.extend_from_slice(&self.shard.to_le_bytes());
        out.extend_from_slice(&self.shards.to_le_bytes());
        out.extend_from_slice(&self.slots.to_le_bytes());
        out.extend_from_slice(&self.committed.to_le_bytes());
        out.extend_from_slice(&self.dedup_hits.to_le_bytes());
        out.extend_from_slice(&self.reads_lease.to_le_bytes());
        out.extend_from_slice(&self.reads_quorum.to_le_bytes());
        out.extend_from_slice(&self.reads_sequenced.to_le_bytes());
        for (_, snap) in self.stages() {
            encode_histogram(&mut out, snap);
        }
        out
    }

    /// Decodes one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor(bytes);
        match c.u8()? {
            TAG_STATS => {}
            t => return Err(ProtoError::BadTag(t)),
        }
        let report = StatsReport {
            shard: c.u32()?,
            shards: c.u32()?,
            slots: c.u64()?,
            committed: c.u64()?,
            dedup_hits: c.u64()?,
            reads_lease: c.u64()?,
            reads_quorum: c.u64()?,
            reads_sequenced: c.u64()?,
            submit_seal: decode_histogram(&mut c)?,
            seal_decide: decode_histogram(&mut c)?,
            decide_apply: decode_histogram(&mut c)?,
            apply_ack: decode_histogram(&mut c)?,
            wal_fsync: decode_histogram(&mut c)?,
            seal_depth: decode_histogram(&mut c)?,
        };
        c.finish()?;
        Ok(report)
    }
}

impl fmt::Display for StatsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard={}/{} slots={} committed={} dedup_hits={} \
             reads lease={} quorum={} sequenced={}",
            self.shard,
            self.shards,
            self.slots,
            self.committed,
            self.dedup_hits,
            self.reads_lease,
            self.reads_quorum,
            self.reads_sequenced
        )?;
        for (name, snap) in self.stages() {
            let (p50, p99) = (snap.percentile(0.50), snap.percentile(0.99));
            write!(f, " {name}[n={} p50={p50} p99={p99} max={}]", snap.count, snap.max)?;
        }
        Ok(())
    }
}

impl Request {
    /// Encodes the request as one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        out.push(TAG_REQUEST);
        out.extend_from_slice(&self.client.0.to_le_bytes());
        out.extend_from_slice(&self.request.0.to_le_bytes());
        match self.op {
            KvOp::Put { key, value } => {
                out.push(OP_PUT);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&value.to_le_bytes());
            }
            KvOp::Get { key } => {
                out.push(OP_GET);
                out.extend_from_slice(&key.to_le_bytes());
            }
        }
        out
    }

    /// Decodes one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor(bytes);
        match c.u8()? {
            TAG_REQUEST => {}
            t => return Err(ProtoError::BadTag(t)),
        }
        let client = ClientId(c.u64()?);
        let request = RequestId(c.u64()?);
        let op = match c.u8()? {
            OP_PUT => KvOp::Put { key: c.u16()?, value: c.u32()? },
            OP_GET => KvOp::Get { key: c.u16()? },
            t => return Err(ProtoError::BadTag(t)),
        };
        c.finish()?;
        Ok(Request { client, request, op })
    }
}

impl Response {
    /// Encodes the response as one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28);
        out.push(TAG_RESPONSE);
        out.extend_from_slice(&self.request.0.to_le_bytes());
        out.extend_from_slice(&self.shard.to_le_bytes());
        match self.outcome {
            Outcome::Put { slot } => {
                out.push(OP_PUT);
                out.extend_from_slice(&slot.to_le_bytes());
            }
            Outcome::Get { slot, value } => {
                out.push(OP_GET);
                out.extend_from_slice(&slot.to_le_bytes());
                match value {
                    Some(v) => {
                        out.push(VAL_SOME);
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    None => out.push(VAL_NONE),
                }
            }
            Outcome::Read { index, value } => {
                out.push(OP_READ);
                out.extend_from_slice(&index.to_le_bytes());
                match value {
                    Some(v) => {
                        out.push(VAL_SOME);
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    None => out.push(VAL_NONE),
                }
            }
        }
        out
    }

    /// Decodes one frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor(bytes);
        match c.u8()? {
            TAG_RESPONSE => {}
            t => return Err(ProtoError::BadTag(t)),
        }
        let request = RequestId(c.u64()?);
        let shard = c.u32()?;
        let outcome = match c.u8()? {
            OP_PUT => Outcome::Put { slot: c.u64()? },
            OP_GET => {
                let slot = c.u64()?;
                let value = match c.u8()? {
                    VAL_NONE => None,
                    VAL_SOME => Some(c.u32()?),
                    t => return Err(ProtoError::BadTag(t)),
                };
                Outcome::Get { slot, value }
            }
            OP_READ => {
                let index = c.u64()?;
                let value = match c.u8()? {
                    VAL_NONE => None,
                    VAL_SOME => Some(c.u32()?),
                    t => return Err(ProtoError::BadTag(t)),
                };
                Outcome::Read { index, value }
            }
            t => return Err(ProtoError::BadTag(t)),
        };
        c.finish()?;
        Ok(Response { request, shard, outcome })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        for op in [KvOp::Put { key: 65535, value: u32::MAX }, KvOp::Get { key: 0 }] {
            let r = Request { client: ClientId(u64::MAX), request: RequestId(7), op };
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
            assert_eq!(r.op.key(), if matches!(op, KvOp::Get { .. }) { 0 } else { 65535 });
        }
    }

    #[test]
    fn response_round_trips() {
        for outcome in [
            Outcome::Put { slot: 1 },
            Outcome::Get { slot: u64::MAX, value: None },
            Outcome::Get { slot: 3, value: Some(u32::MAX) },
            Outcome::Read { index: 0, value: None },
            Outcome::Read { index: u64::MAX, value: Some(7) },
        ] {
            for shard in [0, 3, u32::MAX] {
                let r = Response { request: RequestId(9), shard, outcome };
                assert_eq!(Response::decode(&r.encode()).unwrap(), r);
            }
        }
    }

    #[test]
    fn payload_packing_round_trips() {
        for op in [
            KvOp::Put { key: 0, value: 0 },
            KvOp::Put { key: u16::MAX, value: u32::MAX },
            KvOp::Get { key: 12345 },
        ] {
            assert_eq!(KvOp::from_payload(op.to_payload()), op);
        }
        // Puts and gets of the same key pack to distinct payloads.
        assert_ne!(KvOp::Put { key: 3, value: 0 }.to_payload(), KvOp::Get { key: 3 }.to_payload());
    }

    #[test]
    fn malformed_messages_are_rejected() {
        assert_eq!(Request::decode(&[]), Err(ProtoError::Truncated));
        assert_eq!(Request::decode(&[0x77]), Err(ProtoError::BadTag(0x77)));
        let mut ok =
            Request { client: ClientId(1), request: RequestId(2), op: KvOp::Get { key: 3 } }
                .encode();
        ok.push(0);
        assert_eq!(Request::decode(&ok), Err(ProtoError::TrailingBytes));
        ok.truncate(ok.len() - 3);
        assert_eq!(Request::decode(&ok), Err(ProtoError::Truncated));
        assert_eq!(Response::decode(&[TAG_RESPONSE]), Err(ProtoError::Truncated));
    }

    #[test]
    fn sync_frames_round_trip() {
        for frame in [
            SyncFrame::Request { from_slot: 17, shard: 3 },
            SyncFrame::SnapshotChunk { index: 2, total: 5, bytes: vec![1, 2, 3] },
            SyncFrame::SnapshotChunk { index: 0, total: 1, bytes: vec![] },
            SyncFrame::Record { bytes: vec![0xaa; 40] },
            SyncFrame::Done { applied_through: u64::MAX },
        ] {
            assert_eq!(SyncFrame::decode(&frame.encode()).unwrap(), frame);
        }
        assert_eq!(SyncFrame::decode(&[0x7f]), Err(ProtoError::BadTag(0x7f)));
    }

    #[test]
    fn audit_summary_round_trips() {
        let s = AuditSummary {
            complete: true,
            ok: false,
            slots: 9,
            committed: 72,
            dedup_hits: 3,
            fast_reads: 41,
            lease_epoch: 2,
            shards: 4,
        };
        assert_eq!(AuditSummary::decode(&s.encode()).unwrap(), s);
        assert_eq!(audit_request_frame(), vec![TAG_AUDIT_REQUEST]);
    }

    #[test]
    fn lease_frames_round_trip() {
        for frame in [
            LeaseFrame::Acquire { holder: u64::MAX, epoch: 3, ttl_micros: 2_000_000 },
            LeaseFrame::Grant { replica: 4, epoch: 3 },
            LeaseFrame::Deny { replica: 0, promised: u64::MAX },
            LeaseFrame::Attest { holder: 17, epoch: 3 },
            LeaseFrame::Vouch { replica: 2, epoch: 3, valid: true },
            LeaseFrame::Vouch { replica: 2, epoch: 3, valid: false },
        ] {
            assert_eq!(LeaseFrame::decode(&frame.encode()).unwrap(), frame);
        }
        assert_eq!(LeaseFrame::decode(&[0x70]), Err(ProtoError::BadTag(0x70)));
        assert_eq!(LeaseFrame::decode(&[TAG_LEASE_GRANT, 1]), Err(ProtoError::Truncated));
    }

    #[test]
    fn lease_status_round_trips() {
        let s = LeaseStatus {
            shard: 2,
            shards: 4,
            mode: 2,
            epoch: 5,
            healthy: true,
            grants: 4,
            read_index: 1234,
            reads_lease: 900,
            reads_quorum: 3,
            reads_sequenced: 97,
        };
        assert_eq!(LeaseStatus::decode(&s.encode()).unwrap(), s);
        assert!(s.to_string().contains("reads=lease"));
        assert!(s.to_string().contains("epoch=5"));
        assert!(s.to_string().contains("shard=2/4"));
    }

    fn sample_stats_report() -> StatsReport {
        let mut r = StatsReport::zero(1, 4);
        r.slots = 100;
        r.committed = 400;
        r.dedup_hits = 3;
        r.reads_lease = 900;
        r.reads_quorum = 5;
        r.reads_sequenced = 95;
        for (i, v) in [1_000u64, 40_000, 250_000, 9_000_000].iter().enumerate() {
            r.submit_seal.buckets[i % BUCKETS] += 1;
            r.submit_seal.count += 1;
            r.submit_seal.sum += v;
            r.submit_seal.max = r.submit_seal.max.max(*v);
        }
        r.wal_fsync.buckets[20] = 17;
        r.wal_fsync.count = 17;
        r.wal_fsync.sum = 17 * 700_000;
        r.wal_fsync.max = 1_100_000;
        r
    }

    #[test]
    fn stats_report_round_trips() {
        let r = sample_stats_report();
        assert_eq!(StatsReport::decode(&r.encode()).unwrap(), r);
        assert!(r.to_string().contains("shard=1/4"));
        assert!(r.to_string().contains("wal_fsync[n=17"));
        assert_eq!(StatsReport::decode(&[0x70]), Err(ProtoError::BadTag(0x70)));
        assert_eq!(StatsReport::decode(&[TAG_STATS, 1, 2]), Err(ProtoError::Truncated));
        let mut long = r.encode();
        long.push(0);
        assert_eq!(StatsReport::decode(&long), Err(ProtoError::TrailingBytes));
    }

    #[test]
    fn stats_reports_merge_counter_by_counter() {
        let a = sample_stats_report();
        let mut total = StatsReport::zero(0, 4);
        total.merge(&a);
        total.merge(&a);
        assert_eq!(total.shard, 0);
        assert_eq!(total.slots, 200);
        assert_eq!(total.committed, 800);
        assert_eq!(total.submit_seal.count, 2 * a.submit_seal.count);
        assert_eq!(total.wal_fsync.max, a.wal_fsync.max);
    }

    #[test]
    fn stats_requests_address_a_shard() {
        let frame = stats_request_frame(3);
        assert_eq!(frame.len(), 5);
        assert_eq!(stats_request_shard(&frame).unwrap(), 3);
        assert_eq!(stats_request_shard(&[0x55]), Err(ProtoError::BadTag(0x55)));
        assert_eq!(stats_request_shard(&[TAG_STATS_REQUEST]), Err(ProtoError::Truncated));
        assert_eq!(
            stats_request_shard(&[TAG_STATS_REQUEST, 1, 2, 3, 4, 5]),
            Err(ProtoError::TrailingBytes)
        );
    }

    #[test]
    fn lease_state_requests_address_a_shard() {
        let frame = lease_state_request_frame(3);
        assert_eq!(frame.len(), 5);
        assert_eq!(lease_state_request_shard(&frame).unwrap(), 3);
        // The pre-sharding tag-only frame still parses, as shard 0.
        assert_eq!(lease_state_request_shard(&[TAG_LEASE_STATE_REQUEST]).unwrap(), 0);
        assert_eq!(lease_state_request_shard(&[0x55]), Err(ProtoError::BadTag(0x55)));
        assert_eq!(
            lease_state_request_shard(&[TAG_LEASE_STATE_REQUEST, 1, 2]),
            Err(ProtoError::Truncated)
        );
    }
}
