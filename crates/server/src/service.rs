//! The layered service interface: one workload, two transports.
//!
//! [`KvService`] is the service contract — blocking `put`/`get` with
//! exactly-once acknowledgements. It has two implementations that the
//! integration suite runs the *same* workload against, asserting
//! identical results:
//!
//! * [`LocalKv`] — directly over the engine's intake channel, no
//!   sockets. This is the reference layer: whatever it answers is what
//!   the replicated log dictates.
//! * [`RemoteKv`] — over a framed TCP connection to a
//!   [`KvServer`](crate::KvServer). Everything the transport adds
//!   (framing, encoding, retries, reconnects) must be invisible at this
//!   interface.
//!
//! Both implement the client half of the exactly-once contract: each
//! operation gets a fresh monotonic [`RequestId`], and a retry reuses
//! the *same* id so the service can deduplicate it against the decided
//! log. [`RemoteKv::call_with`] exposes the raw (id, op) call for tests
//! that exercise retries and reconnects explicitly.

use std::fmt;
use std::fs::File;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

use crossbeam::channel::Receiver;
use indulgent_model::{ClientId, RequestId};

use crate::engine::{EngineHandle, Outbound, SubmitHandle};
use crate::proto::{
    audit_request_frame, lease_state_request_frame, stats_request_frame, AuditSummary, KvOp,
    LeaseStatus, ProtoError, Request, Response, StatsReport, SyncFrame,
};
use crate::snapshot::Snapshot;
use crate::wal::{replay_bytes, WalError, WalTail};
use crate::wire::{write_frame, FrameReader, WireError};

/// A failed service call.
#[derive(Debug)]
pub enum ServiceError {
    /// No acknowledgement arrived within the retry budget.
    Timeout {
        /// The request that went unacknowledged.
        request: RequestId,
    },
    /// The engine/server is gone.
    Disconnected,
    /// A transport-level failure (socket or framing).
    Wire(WireError),
    /// The peer sent a frame that does not decode as a response.
    Proto(ProtoError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Timeout { request } => write!(f, "no ack for {request} in time"),
            ServiceError::Disconnected => write!(f, "service is gone"),
            ServiceError::Wire(e) => write!(f, "transport error: {e}"),
            ServiceError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}

impl From<ProtoError> for ServiceError {
    fn from(e: ProtoError) -> Self {
        ServiceError::Proto(e)
    }
}

impl From<WalError> for ServiceError {
    fn from(e: WalError) -> Self {
        match e {
            WalError::Malformed(p) => ServiceError::Proto(p),
            WalError::Io(io) => ServiceError::Wire(WireError::Io(io)),
        }
    }
}

/// The replicated key-value service contract.
///
/// Implementations are *sessions*: each carries a [`ClientId`] and mints
/// monotonic request ids, so every call is exactly-once even across
/// retries and (for the remote layer) reconnects. A returned
/// [`Response`] carries the log slot the operation was sequenced at —
/// the linearization point.
pub trait KvService {
    /// Writes `key := value`; acknowledges with the occupied slot.
    fn put(&mut self, key: u16, value: u32) -> Result<Response, ServiceError>;

    /// Reads `key`; acknowledges with the slot and the value the store
    /// held at that point of the total order.
    fn get(&mut self, key: u16) -> Result<Response, ServiceError>;
}

/// The in-process service layer: a session talking straight to the
/// engine's intake channel.
#[derive(Debug)]
pub struct LocalKv {
    client: ClientId,
    next_request: RequestId,
    submit: SubmitHandle,
    acks: Receiver<Outbound>,
    timeout: Duration,
}

impl LocalKv {
    /// Opens a local session on a running engine.
    #[must_use]
    pub fn connect(engine: &EngineHandle, client: ClientId) -> Self {
        let (submit, acks) = engine.connect();
        LocalKv {
            client,
            next_request: RequestId(0),
            submit,
            acks,
            timeout: Duration::from_secs(10),
        }
    }

    /// This session's client id.
    #[must_use]
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// Submits `(request, op)` and waits for its acknowledgement.
    /// Public so tests can replay an explicit request id (a retry);
    /// replaying advances the session's minting cursor past it, so the
    /// next fresh call never collides with the replayed id.
    pub fn call_with(&mut self, request: RequestId, op: KvOp) -> Result<Response, ServiceError> {
        self.next_request = self.next_request.max(request.next());
        if !self.submit.submit(Request { client: self.client, request, op }) {
            return Err(ServiceError::Disconnected);
        }
        let deadline = Instant::now() + self.timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(ServiceError::Timeout { request });
            }
            match self.acks.recv_timeout(left) {
                // Stale acks (from an earlier retried request) and
                // control frames are skipped; the matching ack ends the
                // call.
                Ok(Outbound::Ack(resp)) if resp.request == request => return Ok(resp),
                Ok(_) => {}
                Err(_) => return Err(ServiceError::Timeout { request }),
            }
        }
    }

    fn call(&mut self, op: KvOp) -> Result<Response, ServiceError> {
        let request = self.next_request;
        self.next_request = request.next();
        self.call_with(request, op)
    }
}

impl KvService for LocalKv {
    fn put(&mut self, key: u16, value: u32) -> Result<Response, ServiceError> {
        self.call(KvOp::Put { key, value })
    }

    fn get(&mut self, key: u16) -> Result<Response, ServiceError> {
        self.call(KvOp::Get { key })
    }
}

/// The networked service layer: a session over one framed TCP
/// connection.
///
/// A call writes the request frame and blocks (with a read timeout) for
/// the matching acknowledgement, re-sending the *same* request id if an
/// ack is slow — the server's dedup layer absorbs the duplicates. To
/// survive a dropped connection, open a new `RemoteKv` with the same
/// [`ClientId`] and replay the in-doubt request id via
/// [`call_with`](RemoteKv::call_with).
#[derive(Debug)]
pub struct RemoteKv {
    client: ClientId,
    next_request: RequestId,
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
    /// Re-send the in-flight request after this long without an ack.
    retry_after: Duration,
    /// Give up after this long.
    deadline: Duration,
}

impl RemoteKv {
    /// Connects a session to a server.
    pub fn connect(addr: SocketAddr, client: ClientId) -> Result<Self, ServiceError> {
        Self::connect_from(addr, client, RequestId(0))
    }

    /// Connects a session that resumes minting request ids at `resume` —
    /// the reconnect path: same [`ClientId`], ids continue where the
    /// dropped connection left off, so replayed requests deduplicate.
    pub fn connect_from(
        addr: SocketAddr,
        client: ClientId,
        resume: RequestId,
    ) -> Result<Self, ServiceError> {
        let writer = TcpStream::connect(addr).map_err(WireError::Io)?;
        writer.set_nodelay(true).map_err(WireError::Io)?;
        let read_side = writer.try_clone().map_err(WireError::Io)?;
        read_side.set_read_timeout(Some(Duration::from_millis(20))).map_err(WireError::Io)?;
        Ok(RemoteKv {
            client,
            next_request: resume,
            writer,
            reader: FrameReader::new(read_side),
            retry_after: Duration::from_millis(500),
            deadline: Duration::from_secs(10),
        })
    }

    /// This session's client id.
    #[must_use]
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// The next request id this session will mint (hand it to
    /// [`connect_from`](RemoteKv::connect_from) when reconnecting).
    #[must_use]
    pub fn next_request(&self) -> RequestId {
        self.next_request
    }

    /// Submits `(request, op)` and waits for the matching ack, re-sending
    /// the same id on slow acks. Public so tests can replay an explicit
    /// request id across retries and reconnects; replaying advances the
    /// session's minting cursor past it, so the next fresh call never
    /// collides with the replayed id.
    pub fn call_with(&mut self, request: RequestId, op: KvOp) -> Result<Response, ServiceError> {
        self.next_request = self.next_request.max(request.next());
        let frame = Request { client: self.client, request, op }.encode();
        write_frame(&mut self.writer, &frame)?;
        let start = Instant::now();
        let mut last_send = start;
        loop {
            if start.elapsed() > self.deadline {
                return Err(ServiceError::Timeout { request });
            }
            match self.reader.read_frame() {
                Ok(Some(payload)) => {
                    let resp = Response::decode(&payload)?;
                    // Acks of earlier retried requests may still be in
                    // flight; only the matching one ends the call.
                    if resp.request == request {
                        return Ok(resp);
                    }
                }
                Ok(None) => return Err(ServiceError::Disconnected),
                Err(WireError::Io(e)) if retryable(&e) => {
                    if last_send.elapsed() >= self.retry_after {
                        write_frame(&mut self.writer, &frame)?;
                        last_send = Instant::now();
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn call(&mut self, op: KvOp) -> Result<Response, ServiceError> {
        let request = self.next_request;
        self.next_request = request.next();
        self.call_with(request, op)
    }
}

impl KvService for RemoteKv {
    fn put(&mut self, key: u16, value: u32) -> Result<Response, ServiceError> {
        self.call(KvOp::Put { key, value })
    }

    fn get(&mut self, key: u16) -> Result<Response, ServiceError> {
        self.call(KvOp::Get { key })
    }
}

/// A pipelined raw connection for load generation: sends requests
/// without waiting for acks (open loop) and drains whatever
/// acknowledgements have arrived. The load generator layers its own
/// bookkeeping (send timestamps, ack matching, monotonic-slot checks)
/// on top.
#[derive(Debug)]
pub struct PipeClient {
    client: ClientId,
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
}

impl PipeClient {
    /// Connects a pipelined session; `poll` is the read-timeout
    /// granularity of [`drain_acks`](PipeClient::drain_acks).
    pub fn connect(
        addr: SocketAddr,
        client: ClientId,
        poll: Duration,
    ) -> Result<Self, ServiceError> {
        let writer = TcpStream::connect(addr).map_err(WireError::Io)?;
        writer.set_nodelay(true).map_err(WireError::Io)?;
        let read_side = writer.try_clone().map_err(WireError::Io)?;
        read_side.set_read_timeout(Some(poll)).map_err(WireError::Io)?;
        Ok(PipeClient { client, writer, reader: FrameReader::new(read_side) })
    }

    /// This session's client id.
    #[must_use]
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// Sends one request without waiting for its ack.
    pub fn send(&mut self, request: RequestId, op: KvOp) -> Result<(), ServiceError> {
        let frame = Request { client: self.client, request, op }.encode();
        write_frame(&mut self.writer, &frame)?;
        Ok(())
    }

    /// Drains acknowledgements already buffered (returning on the first
    /// read timeout). `Ok(acks)` may be empty.
    pub fn drain_acks(&mut self) -> Result<Vec<Response>, ServiceError> {
        let mut acks = Vec::new();
        loop {
            match self.reader.read_frame() {
                Ok(Some(payload)) => acks.push(Response::decode(&payload)?),
                Ok(None) => {
                    if acks.is_empty() {
                        return Err(ServiceError::Disconnected);
                    }
                    return Ok(acks);
                }
                Err(WireError::Io(ref e)) if retryable(e) => return Ok(acks),
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// Socket errors that mean "no data yet", not "connection broken".
fn retryable(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Pulls one shard's durable state from a peer over its framed TCP port
/// and materializes it into `dir` — the per-shard rejoin transfer. Opens
/// a dedicated connection, sends a [`SyncFrame::Request`] naming the
/// shard, reassembles the chunked snapshot, collects the catch-up
/// records, verifies everything (checksums, slot contiguity from the
/// snapshot, the peer's declared `applied_through`), and writes
/// `state.snap` + `wal.log` so a server booted with `dir` as that
/// shard's subdirectory resumes exactly at the peer's applied prefix.
/// Returns the shard-local slot the transferred state is applied
/// through. For a whole-service rejoin across every shard, use
/// [`sync_all_from_peer`].
pub fn sync_from_peer(peer: SocketAddr, shard: u32, dir: &Path) -> Result<u64, ServiceError> {
    let mut writer = TcpStream::connect(peer).map_err(WireError::Io)?;
    writer.set_nodelay(true).map_err(WireError::Io)?;
    let read_side = writer.try_clone().map_err(WireError::Io)?;
    read_side.set_read_timeout(Some(Duration::from_millis(50))).map_err(WireError::Io)?;
    let mut reader = FrameReader::new(read_side);
    write_frame(&mut writer, &SyncFrame::Request { from_slot: 0, shard }.encode())?;

    let mut blob: Vec<u8> = Vec::new();
    let mut chunks_seen = 0u32;
    let mut wal_bytes: Vec<u8> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if Instant::now() > deadline {
            return Err(ServiceError::Timeout { request: RequestId(0) });
        }
        let payload = match reader.read_frame() {
            Ok(Some(p)) => p,
            Ok(None) => return Err(ServiceError::Disconnected),
            Err(WireError::Io(ref e)) if retryable(e) => continue,
            Err(e) => return Err(e.into()),
        };
        match SyncFrame::decode(&payload)? {
            SyncFrame::SnapshotChunk { index, total, bytes } => {
                if index != chunks_seen || index >= total {
                    return Err(ServiceError::Proto(ProtoError::Truncated));
                }
                chunks_seen += 1;
                blob.extend_from_slice(&bytes);
            }
            SyncFrame::Record { bytes } => wal_bytes.extend_from_slice(&bytes),
            SyncFrame::Done { applied_through } => {
                // Validate before persisting: the snapshot must verify,
                // and the records must replay cleanly and contiguously up
                // to the peer's declared watermark.
                let snap = Snapshot::from_framed_bytes(&blob)?;
                let replay = replay_bytes(&wal_bytes)?;
                if !matches!(replay.tail, WalTail::Clean) {
                    return Err(ServiceError::Proto(ProtoError::Truncated));
                }
                let mut expected = snap.applied_through + 1;
                for rec in &replay.records {
                    if rec.slot != expected {
                        return Err(ServiceError::Proto(ProtoError::Truncated));
                    }
                    expected += 1;
                }
                if expected != applied_through + 1 {
                    return Err(ServiceError::Proto(ProtoError::Truncated));
                }
                std::fs::create_dir_all(dir).map_err(WireError::Io)?;
                snap.write_to(&dir.join("state.snap"))?;
                let mut wal = File::create(dir.join("wal.log")).map_err(WireError::Io)?;
                wal.write_all(&wal_bytes).map_err(WireError::Io)?;
                wal.sync_data().map_err(WireError::Io)?;
                return Ok(applied_through);
            }
            SyncFrame::Request { .. } => {
                return Err(ServiceError::Proto(ProtoError::Truncated));
            }
        }
    }
}

/// Rejoins a whole service from a peer: pulls every shard's durable
/// state into `shard-<i>/` subdirectories of `root` (via
/// [`sync_from_peer`]) and writes the fsynced shard-count manifest, so a
/// server booted on `root` with the same shard count recovers the peer's
/// full applied state. Returns the sum of the per-shard applied
/// watermarks (the total applied slot count).
pub fn sync_all_from_peer(peer: SocketAddr, shards: u32, root: &Path) -> Result<u64, ServiceError> {
    let mut total = 0u64;
    for shard in 0..shards {
        total += sync_from_peer(peer, shard, &crate::shard::shard_dir(root, shard))?;
    }
    crate::shard::store_manifest(root, shards).map_err(WireError::Io)?;
    Ok(total)
}

/// Runs the server-side replay audit over the wire: asks the peer to
/// audit itself and retries until the engine reports a quiesced,
/// `complete` verdict (or the timeout lapses). Uses a dedicated
/// connection; call it once load has stopped.
pub fn remote_audit(peer: SocketAddr, timeout: Duration) -> Result<AuditSummary, ServiceError> {
    let mut writer = TcpStream::connect(peer).map_err(WireError::Io)?;
    writer.set_nodelay(true).map_err(WireError::Io)?;
    let read_side = writer.try_clone().map_err(WireError::Io)?;
    read_side.set_read_timeout(Some(Duration::from_millis(50))).map_err(WireError::Io)?;
    let mut reader = FrameReader::new(read_side);
    let deadline = Instant::now() + timeout;
    write_frame(&mut writer, &audit_request_frame())?;
    loop {
        if Instant::now() > deadline {
            return Err(ServiceError::Timeout { request: RequestId(0) });
        }
        match reader.read_frame() {
            Ok(Some(payload)) => {
                let summary = AuditSummary::decode(&payload)?;
                if summary.complete {
                    return Ok(summary);
                }
                // Not yet quiesced; ask again shortly.
                std::thread::sleep(Duration::from_millis(50));
                write_frame(&mut writer, &audit_request_frame())?;
            }
            Ok(None) => return Err(ServiceError::Disconnected),
            Err(WireError::Io(ref e)) if retryable(e) => {}
            Err(e) => return Err(e.into()),
        }
    }
}

/// Fetches one shard's live lease state over the wire: read mode,
/// current epoch, lease health, and the read-path counters. Unlike
/// [`remote_audit`] this does not wait for quiescence — it is a
/// point-in-time dump, usable mid-load and in failure artifacts. A
/// request naming a shard the peer does not host gets no reply and
/// times out.
pub fn remote_lease_state(
    peer: SocketAddr,
    shard: u32,
    timeout: Duration,
) -> Result<LeaseStatus, ServiceError> {
    let mut writer = TcpStream::connect(peer).map_err(WireError::Io)?;
    writer.set_nodelay(true).map_err(WireError::Io)?;
    let read_side = writer.try_clone().map_err(WireError::Io)?;
    read_side.set_read_timeout(Some(Duration::from_millis(50))).map_err(WireError::Io)?;
    let mut reader = FrameReader::new(read_side);
    let deadline = Instant::now() + timeout;
    write_frame(&mut writer, &lease_state_request_frame(shard))?;
    loop {
        if Instant::now() > deadline {
            return Err(ServiceError::Timeout { request: RequestId(0) });
        }
        match reader.read_frame() {
            Ok(Some(payload)) => return Ok(LeaseStatus::decode(&payload)?),
            Ok(None) => return Err(ServiceError::Disconnected),
            Err(WireError::Io(ref e)) if retryable(e) => {}
            Err(e) => return Err(e.into()),
        }
    }
}

/// Scrapes one shard's live pipeline metrics over the wire: slot and
/// command counters plus the stage-latency histograms (submit→seal,
/// seal→decide, decide→apply, apply→ack, WAL fsync, seal-time queue
/// depth). Like [`remote_lease_state`] this is a point-in-time dump —
/// no quiescence, usable mid-load. Scrape every shard and fold the
/// reports with [`StatsReport::merge`] for a whole-service aggregate. A
/// request naming a shard the peer does not host gets no reply and
/// times out.
pub fn remote_stats(
    peer: SocketAddr,
    shard: u32,
    timeout: Duration,
) -> Result<StatsReport, ServiceError> {
    let mut writer = TcpStream::connect(peer).map_err(WireError::Io)?;
    writer.set_nodelay(true).map_err(WireError::Io)?;
    let read_side = writer.try_clone().map_err(WireError::Io)?;
    read_side.set_read_timeout(Some(Duration::from_millis(50))).map_err(WireError::Io)?;
    let mut reader = FrameReader::new(read_side);
    let deadline = Instant::now() + timeout;
    write_frame(&mut writer, &stats_request_frame(shard))?;
    loop {
        if Instant::now() > deadline {
            return Err(ServiceError::Timeout { request: RequestId(0) });
        }
        match reader.read_frame() {
            Ok(Some(payload)) => return Ok(StatsReport::decode(&payload)?),
            Ok(None) => return Err(ServiceError::Disconnected),
            Err(WireError::Io(ref e)) if retryable(e) => {}
            Err(e) => return Err(e.into()),
        }
    }
}
