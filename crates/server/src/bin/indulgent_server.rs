//! Standalone service entry point: bind the replicated-KV server on an
//! address and serve until killed (SIGINT/SIGTERM terminate the
//! process; replicas live in-process, so nothing needs cleanup beyond
//! the OS reclaiming the sockets — with `--dir` the WAL and snapshot
//! survive the kill and the next start recovers from them).
//!
//! ```text
//! indulgent_server [ADDR] [BATCH] [DEPTH] [--dir DIR] [--snapshot-every N] [--reads MODE] [--shards S]
//! ```
//!
//! * `ADDR`  — listen address (default `127.0.0.1:7171`; port 0 picks an
//!   ephemeral port and prints it)
//! * `BATCH` — commands per batch (default 8)
//! * `DEPTH` — pipeline depth (default 4)
//! * `--dir DIR` — durability root (per-shard WAL + snapshots under
//!   `shard-<i>/`); omitting it runs the server in-memory, as before
//! * `--snapshot-every N` — checkpoint cadence in slots (default 256;
//!   only meaningful with `--dir`)
//! * `--shards S` — number of independent shard groups the keyspace is
//!   hash-partitioned across (default 1); with `--dir` the root must
//!   have been laid out for the same count
//! * `--reads MODE` — read path: `lease` (default; leader-lease fast
//!   reads with quorum/sequenced fallback), `quorum` (attest every read
//!   batch, no lease), or `log` (sequence every read — the pre-lease
//!   behavior, kept as an escape hatch)
//! * `--stats-every SECS` — periodically scrape the engine's own stats
//!   port (per-shard [`StatsReport`]s plus the whole-service aggregate)
//!   and dump the process-wide metrics registry to stdout; 0 (default)
//!   disables the scraper

use std::time::Duration;

use indulgent_server::{
    remote_stats, DurabilityConfig, EngineConfig, KvServer, ReadPath, StatsReport,
};

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut dir: Option<String> = None;
    let mut snapshot_every: u64 = 256;
    let mut reads = ReadPath::Lease;
    let mut shards: usize = 1;
    let mut stats_every: u64 = 0;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--dir" => dir = Some(argv.next().expect("--dir needs a path")),
            "--shards" => {
                shards = argv
                    .next()
                    .expect("--shards needs a count")
                    .parse()
                    .expect("--shards must be a positive integer");
            }
            "--snapshot-every" => {
                snapshot_every = argv
                    .next()
                    .expect("--snapshot-every needs a count")
                    .parse()
                    .expect("--snapshot-every must be an integer");
            }
            "--stats-every" => {
                stats_every = argv
                    .next()
                    .expect("--stats-every needs a period in seconds")
                    .parse()
                    .expect("--stats-every must be an integer");
            }
            "--reads" => {
                reads = match argv.next().expect("--reads needs a mode").as_str() {
                    "lease" => ReadPath::Lease,
                    "quorum" => ReadPath::Quorum,
                    "log" | "sequenced" => ReadPath::Sequenced,
                    other => panic!("--reads must be lease|quorum|log, got {other:?}"),
                };
            }
            _ => positional.push(arg),
        }
    }
    let addr = positional.first().cloned().unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let batch: usize =
        positional.get(1).map_or(8, |s| s.parse().expect("BATCH must be an integer"));
    let depth: u64 = positional.get(2).map_or(4, |s| s.parse().expect("DEPTH must be an integer"));

    let mut config = EngineConfig::default_5()
        .with_batch_size(batch)
        .with_pipeline_depth(depth)
        .with_reads(reads)
        .with_shards(shards);
    if let Some(dir) = &dir {
        config =
            config.with_durability(DurabilityConfig::new(dir).with_snapshot_every(snapshot_every));
    }
    let server = KvServer::bind(&addr, config).expect("bind listener");
    println!(
        "indulgent_server listening on {} (n=5 t=2, batch {batch}, pipeline depth {depth}, reads {reads:?}, shards {shards}{})",
        server.addr(),
        dir.as_deref().map_or_else(String::new, |d| format!(", durable in {d}")),
    );
    if stats_every == 0 {
        loop {
            std::thread::sleep(Duration::from_secs(60));
        }
    }
    // Scrape our own stats port the way an external monitor would, so
    // the printed numbers exercise the same wire path clients use.
    let self_addr = server.addr();
    let period = Duration::from_secs(stats_every);
    loop {
        std::thread::sleep(period);
        let mut aggregate: Option<StatsReport> = None;
        for shard in 0..shards as u32 {
            match remote_stats(self_addr, shard, Duration::from_secs(2)) {
                Ok(report) => {
                    println!("stats: {report}");
                    match aggregate.as_mut() {
                        Some(agg) => agg.merge(&report),
                        None => aggregate = Some(report),
                    }
                }
                Err(e) => println!("stats: shard {shard} scrape failed: {e}"),
            }
        }
        if shards > 1 {
            if let Some(agg) = aggregate {
                println!("stats: aggregate {agg}");
            }
        }
        print!("{}", indulgent_obs::dump_to_string());
    }
}
