//! Standalone service entry point: bind the replicated-KV server on an
//! address and serve until killed (SIGINT/SIGTERM terminate the
//! process; replicas live in-process, so nothing needs cleanup beyond
//! the OS reclaiming the sockets).
//!
//! ```text
//! indulgent_server [ADDR] [BATCH] [DEPTH]
//! ```
//!
//! * `ADDR`  — listen address (default `127.0.0.1:7171`; port 0 picks an
//!   ephemeral port and prints it)
//! * `BATCH` — commands per batch (default 8)
//! * `DEPTH` — pipeline depth (default 4)

use std::time::Duration;

use indulgent_server::{EngineConfig, KvServer};

fn main() {
    let mut argv = std::env::args().skip(1);
    let addr = argv.next().unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let batch: usize = argv.next().map_or(8, |s| s.parse().expect("BATCH must be an integer"));
    let depth: u64 = argv.next().map_or(4, |s| s.parse().expect("DEPTH must be an integer"));

    let config = EngineConfig::default_5().with_batch_size(batch).with_pipeline_depth(depth);
    let server = KvServer::bind(&addr, config).expect("bind listener");
    println!(
        "indulgent_server listening on {} (n=5 t=2, batch {batch}, pipeline depth {depth})",
        server.addr()
    );
    loop {
        std::thread::sleep(Duration::from_secs(60));
    }
}
