//! Leader leases: the time-based quorum promise that lets the engine
//! answer `Get`s without sequencing them through the log.
//!
//! # The protocol
//!
//! The leader (the engine's driver thread) holds a **lease** — a promise
//! from a quorum of replicas that, until a per-grant expiry, they will
//! not grant a *newer* lease to anyone else. While a quorum of grants is
//! unexpired (with a safety [`LeaseConfig::margin`] against clock skew),
//! no other leader incarnation can commit a write the holder has not
//! applied, so the holder's applied store *is* the linearizable state:
//! a `Get` can be answered locally at a **read index** equal to the
//! applied frontier, without occupying a slot — see
//! [`indulgent_model::ReadIndex`] for the linearization rule.
//!
//! The fallback ladder when the lease is suspect, expiring, or
//! mid-epoch:
//!
//! 1. **lease read** — lease healthy: answer from the applied store;
//! 2. **quorum read** — lease unhealthy: probe the replicas
//!    ([`LeaseFrame::Attest`]); a quorum of [`LeaseFrame::Vouch`]es that
//!    the lease epoch is still their newest promise re-certifies
//!    freshness for this one read;
//! 3. **sequenced read** — no quorum vouches: the read falls back into
//!    the log and occupies a slot, exactly the pre-lease behavior (and
//!    the `--reads log` escape hatch pins every read here).
//!
//! # Epochs and crash recovery
//!
//! Every lease carries a [`LeaseEpoch`], monotonic per service data
//! directory *across restarts*: booting the engine loads the stored
//! epoch, **burns `epoch + 1` to disk before serving anything**
//! ([`store_epoch`] uses the same atomic write-fsync-rename idiom as the
//! snapshot), and only then acquires a lease under the new epoch. A
//! `kill -9`'d leader therefore can never resume serving fast reads
//! under its old epoch: its next incarnation's first act is to
//! invalidate it. Replicas track the newest epoch they have promised
//! ([`ReplicaLeaseAgent`]) and deny anything older.
//!
//! Fast-read responses are cached for retry idempotence but are *not*
//! WAL-durable: reads mutate nothing, so a client retrying a read across
//! a server crash re-executes it at a read index at least as new as the
//! original — still linearizable, just possibly a fresher value.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::proto::{LeaseFrame, ProtoError};
use crate::wal::crc32;

/// How the engine answers `Get`s (the `--reads` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPath {
    /// Every read is sequenced through the log (the pre-lease behavior;
    /// `--reads log`).
    #[default]
    Sequenced,
    /// Reads are answered after a per-read quorum attest round, never
    /// from the lease alone (`--reads quorum`).
    Quorum,
    /// Reads are answered from the applied store while the lease is
    /// healthy, falling down the ladder otherwise (`--reads lease`).
    Lease,
}

impl ReadPath {
    /// The `LeaseStatus::mode` wire encoding.
    #[must_use]
    pub fn as_wire(self) -> u8 {
        match self {
            ReadPath::Sequenced => 0,
            ReadPath::Quorum => 1,
            ReadPath::Lease => 2,
        }
    }
}

/// Lease timing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseConfig {
    /// How long one grant lasts, measured at the *holder* from send
    /// time (conservative: the replica measures from receipt).
    pub ttl: Duration,
    /// How often the holder renews (well inside `ttl` so transient
    /// scheduling hiccups don't drop the lease).
    pub renew_every: Duration,
    /// Safety margin: a grant within `margin` of expiry no longer
    /// counts toward read health, absorbing clock-rate skew.
    pub margin: Duration,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        let ttl = Duration::from_secs(2);
        LeaseConfig { ttl, renew_every: ttl / 4, margin: ttl / 8 }
    }
}

impl LeaseConfig {
    /// Overrides the grant TTL, rescaling the renew cadence and margin
    /// to the default ttl/4 and ttl/8 proportions.
    #[must_use]
    pub fn with_ttl(mut self, ttl: Duration) -> Self {
        self.ttl = ttl;
        self.renew_every = ttl / 4;
        self.margin = ttl / 8;
        self
    }

    /// Overrides the renew cadence (tests use a long cadence to force
    /// the lease to lapse and exercise the fallback ladder).
    #[must_use]
    pub fn with_renew_every(mut self, renew_every: Duration) -> Self {
        self.renew_every = renew_every;
        self
    }
}

/// The `lease_agent` metric family: how this process's replica lease
/// agents answered, summed across all shards and agents. The
/// grant/deny and valid/invalid-vouch ratios are the protocol-level
/// view of lease health — a deny or an invalid vouch is a replica
/// refusing to underwrite a stale leader.
#[derive(Debug)]
struct LeaseMetrics {
    grants: indulgent_obs::Counter,
    denials: indulgent_obs::Counter,
    vouches_valid: indulgent_obs::Counter,
    vouches_invalid: indulgent_obs::Counter,
}

static LEASE_METRICS: LeaseMetrics = LeaseMetrics {
    grants: indulgent_obs::Counter::new(),
    denials: indulgent_obs::Counter::new(),
    vouches_valid: indulgent_obs::Counter::new(),
    vouches_invalid: indulgent_obs::Counter::new(),
};

impl indulgent_obs::MetricFamily for LeaseMetrics {
    fn name(&self) -> &'static str {
        "lease_agent"
    }

    fn emit(&self, sink: &mut dyn indulgent_obs::MetricSink) {
        sink.counter("grants", self.grants.get());
        sink.counter("denials", self.denials.get());
        sink.counter("vouches_valid", self.vouches_valid.get());
        sink.counter("vouches_invalid", self.vouches_invalid.get());
    }
}

static REGISTER_LEASE_METRICS: std::sync::Once = std::sync::Once::new();

fn lease_metrics() -> &'static LeaseMetrics {
    REGISTER_LEASE_METRICS.call_once(|| indulgent_obs::register_family(&LEASE_METRICS));
    &LEASE_METRICS
}

/// A replica's half of the lease protocol: the newest promise it has
/// made, and the refusal of anything older.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaLeaseAgent {
    replica: u32,
    /// The newest epoch this replica has promised (0 = never granted).
    promised: u64,
    /// The incarnation holding the promised epoch.
    holder: u64,
    /// When the current grant lapses.
    expires_at: Option<Instant>,
}

impl ReplicaLeaseAgent {
    /// A fresh agent that has never granted a lease.
    #[must_use]
    pub fn new(replica: u32) -> Self {
        ReplicaLeaseAgent { replica, promised: 0, holder: 0, expires_at: None }
    }

    /// The newest epoch this replica has promised.
    #[must_use]
    pub fn promised(&self) -> u64 {
        self.promised
    }

    /// Handles one holder-to-replica lease frame, returning the encoded
    /// reply. Reply frames (`Grant`/`Deny`/`Vouch`) addressed *to* an
    /// agent are a protocol error.
    pub fn handle(&mut self, frame: &LeaseFrame, now: Instant) -> Result<Vec<u8>, ProtoError> {
        match *frame {
            LeaseFrame::Acquire { holder, epoch, ttl_micros } => {
                // Grant a newer epoch, or renew the exact lease already
                // held; anything older is refused with the promise that
                // outbid it.
                if epoch > self.promised || (epoch == self.promised && holder == self.holder) {
                    self.promised = epoch;
                    self.holder = holder;
                    self.expires_at = Some(now + Duration::from_micros(ttl_micros));
                    lease_metrics().grants.incr();
                    Ok(LeaseFrame::Grant { replica: self.replica, epoch }.encode())
                } else {
                    lease_metrics().denials.incr();
                    Ok(LeaseFrame::Deny { replica: self.replica, promised: self.promised }.encode())
                }
            }
            LeaseFrame::Attest { holder, epoch } => {
                let valid = self.promised == epoch && self.holder == holder;
                let m = lease_metrics();
                if valid {
                    m.vouches_valid.incr();
                } else {
                    m.vouches_invalid.incr();
                }
                Ok(LeaseFrame::Vouch { replica: self.replica, epoch, valid }.encode())
            }
            LeaseFrame::Grant { .. } | LeaseFrame::Deny { .. } | LeaseFrame::Vouch { .. } => {
                Err(ProtoError::BadTag(frame.encode()[0]))
            }
        }
    }
}

/// The holder's half: outstanding grants and the health rule.
#[derive(Debug)]
pub struct LeaderLease {
    epoch: u64,
    holder: u64,
    config: LeaseConfig,
    /// Per-replica grant expiry (measured from *our* send time, the
    /// conservative end).
    grants: Vec<Option<Instant>>,
    quorum: usize,
    last_acquire: Option<Instant>,
}

impl LeaderLease {
    /// A new holder incarnation serving `epoch` over `n` replicas.
    #[must_use]
    pub fn new(epoch: u64, holder: u64, n: usize, quorum: usize, config: LeaseConfig) -> Self {
        LeaderLease { epoch, holder, config, grants: vec![None; n], quorum, last_acquire: None }
    }

    /// The epoch this incarnation serves under.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The holder incarnation id.
    #[must_use]
    pub fn holder(&self) -> u64 {
        self.holder
    }

    /// One encoded [`LeaseFrame::Acquire`] per replica, recording `now`
    /// as the conservative grant base for every reply that comes back.
    pub fn acquire_frames(&mut self, now: Instant) -> Vec<Vec<u8>> {
        self.last_acquire = Some(now);
        let frame = LeaseFrame::Acquire {
            holder: self.holder,
            epoch: self.epoch,
            ttl_micros: u64::try_from(self.config.ttl.as_micros()).unwrap_or(u64::MAX),
        };
        (0..self.grants.len()).map(|_| frame.encode()).collect()
    }

    /// Absorbs one replica reply to the latest acquire round.
    pub fn absorb(&mut self, frame: &LeaseFrame) {
        match *frame {
            LeaseFrame::Grant { replica, epoch } if epoch == self.epoch => {
                let Some(sent) = self.last_acquire else { return };
                if let Some(g) = self.grants.get_mut(replica as usize) {
                    *g = Some(sent + self.config.ttl);
                }
            }
            LeaseFrame::Deny { replica, .. } => {
                if let Some(g) = self.grants.get_mut(replica as usize) {
                    *g = None;
                }
            }
            _ => {}
        }
    }

    /// Grants that are still comfortably inside their TTL (the margin
    /// absorbs clock-rate skew).
    #[must_use]
    pub fn healthy_grants(&self, now: Instant) -> usize {
        self.grants
            .iter()
            .flatten()
            .filter(|&&expiry| {
                expiry.checked_duration_since(now).is_some_and(|left| left > self.config.margin)
            })
            .count()
    }

    /// Grants held, healthy or not.
    #[must_use]
    pub fn grant_count(&self) -> usize {
        self.grants.iter().flatten().count()
    }

    /// Whether a fast read is allowed right now: a quorum of healthy
    /// grants.
    #[must_use]
    pub fn read_allowed(&self, now: Instant) -> bool {
        self.healthy_grants(now) >= self.quorum
    }

    /// Whether a renewal round is due.
    #[must_use]
    pub fn renew_due(&self, now: Instant) -> bool {
        match self.last_acquire {
            Some(at) => now.duration_since(at) >= self.config.renew_every,
            None => true,
        }
    }

    /// One encoded [`LeaseFrame::Attest`] per replica — the quorum-read
    /// freshness probe.
    #[must_use]
    pub fn attest_frames(&self) -> Vec<Vec<u8>> {
        let frame = LeaseFrame::Attest { holder: self.holder, epoch: self.epoch };
        (0..self.grants.len()).map(|_| frame.encode()).collect()
    }
}

/// The epoch file name inside a durable data directory.
const EPOCH_FILE: &str = "lease.epoch";
const EPOCH_LEN: usize = 12; // 8-byte LE epoch + crc32

/// Loads the stored lease epoch from `dir` (`0` if none was ever
/// burned; a corrupt file is an error, not a silent reset — resetting
/// would let a stale incarnation reuse a granted epoch).
pub fn load_epoch(dir: &Path) -> io::Result<u64> {
    let mut file = match OpenOptions::new().read(true).open(dir.join(EPOCH_FILE)) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.len() != EPOCH_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "lease epoch file malformed"));
    }
    let epoch = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
    let stored = u32::from_le_bytes(bytes[8..].try_into().expect("4 bytes"));
    if crc32(&bytes[..8]) != stored {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "lease epoch checksum mismatch"));
    }
    Ok(epoch)
}

/// Durably burns `epoch` into `dir` (atomic temp-write + fsync + rename,
/// the snapshot idiom). Must complete before the incarnation serves
/// anything under `epoch`.
pub fn store_epoch(dir: &Path, epoch: u64) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let path = dir.join(EPOCH_FILE);
    let tmp = path.with_extension("tmp");
    let mut bytes = Vec::with_capacity(EPOCH_LEN);
    bytes.extend_from_slice(&epoch.to_le_bytes());
    bytes.extend_from_slice(&crc32(&epoch.to_le_bytes()).to_le_bytes());
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &path)?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_data();
    }
    Ok(())
}

/// A process-unique holder incarnation id (pid in the high bits, a
/// per-process counter in the low), so two incarnations never collide
/// even within one test process.
#[must_use]
pub fn fresh_holder() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    (u64::from(std::process::id()) << 32) | COUNTER.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lease(epoch: u64, holder: u64, config: LeaseConfig) -> LeaderLease {
        LeaderLease::new(epoch, holder, 5, 3, config)
    }

    fn acquire_all(
        lease: &mut LeaderLease,
        agents: &mut [ReplicaLeaseAgent],
        now: Instant,
    ) -> usize {
        let frames = lease.acquire_frames(now);
        let mut granted = 0;
        for (agent, frame) in agents.iter_mut().zip(&frames) {
            let reply = agent.handle(&LeaseFrame::decode(frame).unwrap(), now).unwrap();
            let reply = LeaseFrame::decode(&reply).unwrap();
            if matches!(reply, LeaseFrame::Grant { .. }) {
                granted += 1;
            }
            lease.absorb(&reply);
        }
        granted
    }

    #[test]
    fn quorum_grant_enables_reads_until_expiry() {
        let config = LeaseConfig::default().with_ttl(Duration::from_millis(80));
        let mut agents: Vec<_> = (0..5).map(ReplicaLeaseAgent::new).collect();
        let mut lease = lease(1, 10, config);
        let t0 = Instant::now();
        assert!(!lease.read_allowed(t0), "no grants yet");
        assert_eq!(acquire_all(&mut lease, &mut agents, t0), 5);
        assert!(lease.read_allowed(t0));
        assert_eq!(lease.grant_count(), 5);
        // Past the margin boundary the grants stop counting.
        let late = t0 + config.ttl - config.margin;
        assert!(!lease.read_allowed(late));
    }

    #[test]
    fn newer_epoch_outbids_and_old_holder_is_denied() {
        let config = LeaseConfig::default();
        let mut agents: Vec<_> = (0..5).map(ReplicaLeaseAgent::new).collect();
        let t0 = Instant::now();
        let mut old = lease(1, 10, config);
        assert_eq!(acquire_all(&mut old, &mut agents, t0), 5);
        // A new incarnation with a burned epoch 2 takes over.
        let mut new = lease(2, 11, config);
        assert_eq!(acquire_all(&mut new, &mut agents, t0), 5);
        // The old holder's renewals are denied and clear its grants.
        assert_eq!(acquire_all(&mut old, &mut agents, t0), 0);
        assert_eq!(old.grant_count(), 0);
        assert!(!old.read_allowed(t0));
        assert!(new.read_allowed(t0));
    }

    #[test]
    fn same_epoch_renewal_extends_only_for_the_holder() {
        let mut agent = ReplicaLeaseAgent::new(0);
        let t0 = Instant::now();
        let grant = agent
            .handle(&LeaseFrame::Acquire { holder: 10, epoch: 1, ttl_micros: 50_000 }, t0)
            .unwrap();
        assert!(matches!(LeaseFrame::decode(&grant).unwrap(), LeaseFrame::Grant { .. }));
        // Same epoch, same holder: renewal granted.
        let renew = agent
            .handle(&LeaseFrame::Acquire { holder: 10, epoch: 1, ttl_micros: 50_000 }, t0)
            .unwrap();
        assert!(matches!(LeaseFrame::decode(&renew).unwrap(), LeaseFrame::Grant { .. }));
        // Same epoch, different holder: denied.
        let steal = agent
            .handle(&LeaseFrame::Acquire { holder: 11, epoch: 1, ttl_micros: 50_000 }, t0)
            .unwrap();
        assert!(matches!(
            LeaseFrame::decode(&steal).unwrap(),
            LeaseFrame::Deny { promised: 1, .. }
        ));
    }

    #[test]
    fn attest_vouches_only_for_the_current_promise() {
        let mut agent = ReplicaLeaseAgent::new(3);
        let t0 = Instant::now();
        agent.handle(&LeaseFrame::Acquire { holder: 10, epoch: 2, ttl_micros: 1_000 }, t0).unwrap();
        let vouch = |agent: &mut ReplicaLeaseAgent, holder, epoch| {
            let reply = agent.handle(&LeaseFrame::Attest { holder, epoch }, t0).unwrap();
            match LeaseFrame::decode(&reply).unwrap() {
                LeaseFrame::Vouch { valid, .. } => valid,
                f => panic!("expected vouch, got {f:?}"),
            }
        };
        assert!(vouch(&mut agent, 10, 2));
        assert!(!vouch(&mut agent, 10, 1), "stale epoch must not be vouched");
        assert!(!vouch(&mut agent, 11, 2), "wrong holder must not be vouched");
    }

    #[test]
    fn reply_frames_to_an_agent_are_rejected() {
        let mut agent = ReplicaLeaseAgent::new(0);
        let t0 = Instant::now();
        for frame in [
            LeaseFrame::Grant { replica: 1, epoch: 1 },
            LeaseFrame::Deny { replica: 1, promised: 1 },
            LeaseFrame::Vouch { replica: 1, epoch: 1, valid: true },
        ] {
            assert!(agent.handle(&frame, t0).is_err());
        }
    }

    #[test]
    fn renewal_cadence() {
        let config = LeaseConfig::default()
            .with_ttl(Duration::from_millis(100))
            .with_renew_every(Duration::from_millis(25));
        let mut l = lease(1, 10, config);
        let t0 = Instant::now();
        assert!(l.renew_due(t0), "never acquired: due immediately");
        let _ = l.acquire_frames(t0);
        assert!(!l.renew_due(t0 + Duration::from_millis(10)));
        assert!(l.renew_due(t0 + Duration::from_millis(25)));
    }

    #[test]
    fn epoch_file_round_trips_and_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!("indulgent-lease-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(load_epoch(&dir).unwrap(), 0, "missing file reads as epoch 0");
        store_epoch(&dir, 7).unwrap();
        assert_eq!(load_epoch(&dir).unwrap(), 7);
        store_epoch(&dir, 8).unwrap();
        assert_eq!(load_epoch(&dir).unwrap(), 8);
        // Corruption is an error, not a silent reset to 0.
        std::fs::write(dir.join(EPOCH_FILE), [0xffu8; EPOCH_LEN]).unwrap();
        assert!(load_epoch(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fresh_holders_are_unique() {
        assert_ne!(fresh_holder(), fresh_holder());
    }
}
