//! Checkpointed state snapshots: the durable base the WAL replays on
//! top of.
//!
//! A snapshot captures everything the engine needs to resume as if it
//! had applied every slot up to `applied_through`: the materialized KV
//! store, the session dedup table (so exactly-once survives a restart —
//! a retried request from before the crash is still answered from the
//! cache, not re-applied), the batch-id high-water mark (so a recovered
//! incarnation never reuses a batch id), and the cumulative commit
//! count. The file is one checksummed record in the WAL's framing
//! ([`crate::wal`]) and is written atomically — serialize to a sibling
//! temp file, fsync, rename — so a crash mid-checkpoint leaves the
//! previous snapshot intact.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use indulgent_model::{ClientId, RequestId};

use crate::proto::{ProtoError, Response};
use crate::wal::{crc32, WalError, MAX_RECORD, RECORD_HEADER_LEN};

/// One cached session acknowledgement: the dedup table entry that makes
/// a pre-crash retry idempotent after recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionEntry {
    /// The submitting session.
    pub client: ClientId,
    /// The request number answered.
    pub request: RequestId,
    /// The acknowledgement to replay on retry.
    pub response: Response,
}

/// A checkpointed engine state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Every slot `<= applied_through` is folded into this snapshot.
    pub applied_through: u64,
    /// The next batch id a recovered frontend may mint (ids below it are
    /// burned — possibly applied, never reusable).
    pub next_batch: u64,
    /// Commands committed over the service's whole lifetime, across
    /// every incarnation up to `applied_through`.
    pub committed: u64,
    /// The KV store materialized by slots `1..=applied_through`.
    pub store: BTreeMap<u16, u32>,
    /// The session dedup table at `applied_through`.
    pub sessions: Vec<SessionEntry>,
}

impl Snapshot {
    /// Encodes the snapshot payload (no framing).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.store.len() * 6 + self.sessions.len() * 40);
        out.extend_from_slice(&self.applied_through.to_le_bytes());
        out.extend_from_slice(&self.next_batch.to_le_bytes());
        out.extend_from_slice(&self.committed.to_le_bytes());
        out.extend_from_slice(
            &u32::try_from(self.store.len()).expect("u16-keyed store").to_le_bytes(),
        );
        for (&key, &value) in &self.store {
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&value.to_le_bytes());
        }
        out.extend_from_slice(
            &u32::try_from(self.sessions.len()).expect("bounded session table").to_le_bytes(),
        );
        for s in &self.sessions {
            out.extend_from_slice(&s.client.0.to_le_bytes());
            out.extend_from_slice(&s.request.0.to_le_bytes());
            let resp = s.response.encode();
            out.extend_from_slice(
                &u16::try_from(resp.len()).expect("responses are tens of bytes").to_le_bytes(),
            );
            out.extend_from_slice(&resp);
        }
        out
    }

    /// Decodes a snapshot payload produced by [`encode`](Snapshot::encode).
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtoError> {
        fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Result<&'a [u8], ProtoError> {
            if bytes.len() < n {
                return Err(ProtoError::Truncated);
            }
            let (head, rest) = bytes.split_at(n);
            *bytes = rest;
            Ok(head)
        }
        fn u64_of(bytes: &mut &[u8]) -> Result<u64, ProtoError> {
            Ok(u64::from_le_bytes(take(bytes, 8)?.try_into().expect("8 bytes")))
        }
        fn u32_of(bytes: &mut &[u8]) -> Result<u32, ProtoError> {
            Ok(u32::from_le_bytes(take(bytes, 4)?.try_into().expect("4 bytes")))
        }
        let mut c = bytes;
        let applied_through = u64_of(&mut c)?;
        let next_batch = u64_of(&mut c)?;
        let committed = u64_of(&mut c)?;
        let store_len = u32_of(&mut c)?;
        let mut store = BTreeMap::new();
        for _ in 0..store_len {
            let key = u16::from_le_bytes(take(&mut c, 2)?.try_into().expect("2 bytes"));
            let value = u32_of(&mut c)?;
            store.insert(key, value);
        }
        let sessions_len = u32_of(&mut c)?;
        let mut sessions = Vec::with_capacity(sessions_len as usize);
        for _ in 0..sessions_len {
            let client = ClientId(u64_of(&mut c)?);
            let request = RequestId(u64_of(&mut c)?);
            let resp_len = u16::from_le_bytes(take(&mut c, 2)?.try_into().expect("2 bytes"));
            let response = Response::decode(take(&mut c, resp_len as usize)?)?;
            sessions.push(SessionEntry { client, request, response });
        }
        if !c.is_empty() {
            return Err(ProtoError::TrailingBytes);
        }
        Ok(Snapshot { applied_through, next_batch, committed, store, sessions })
    }

    /// Serializes the snapshot as one checksummed, framed record — the
    /// byte form written to disk and shipped over the sync channel.
    #[must_use]
    pub fn to_framed_bytes(&self) -> Vec<u8> {
        let payload = self.encode();
        assert!(payload.len() <= MAX_RECORD, "snapshot exceeds MAX_RECORD");
        let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        out.extend_from_slice(
            &u32::try_from(payload.len()).expect("bounded by MAX_RECORD").to_le_bytes(),
        );
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses and checksum-verifies a framed snapshot byte blob.
    pub fn from_framed_bytes(bytes: &[u8]) -> Result<Self, WalError> {
        if bytes.len() < RECORD_HEADER_LEN {
            return Err(WalError::Malformed(ProtoError::Truncated));
        }
        let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
        let stored = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD || bytes.len() != RECORD_HEADER_LEN + len {
            return Err(WalError::Malformed(ProtoError::Truncated));
        }
        let payload = &bytes[RECORD_HEADER_LEN..];
        if crc32(payload) != stored {
            return Err(WalError::Malformed(ProtoError::Truncated));
        }
        Ok(Self::decode(payload)?)
    }

    /// Writes the snapshot atomically: temp file, fsync, rename over the
    /// target.
    pub fn write_to(&self, path: &Path) -> Result<(), WalError> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&self.to_framed_bytes())?;
            f.sync_data()?;
        }
        fs::rename(&tmp, path)?;
        // Durably record the rename itself where the platform allows.
        if let Some(parent) = path.parent() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_data();
            }
        }
        Ok(())
    }

    /// Loads the snapshot at `path`; `Ok(None)` if none was ever written.
    pub fn load(path: &Path) -> Result<Option<Self>, WalError> {
        let mut file = match OpenOptions::new().read(true).open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        Ok(Some(Self::from_framed_bytes(&bytes)?))
    }
}

#[cfg(test)]
mod tests {
    use crate::proto::Outcome;

    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            applied_through: 42,
            next_batch: 7,
            committed: 99,
            store: [(1u16, 10u32), (65535, 4_000_000_000)].into_iter().collect(),
            sessions: vec![SessionEntry {
                client: ClientId(3),
                request: RequestId(11),
                response: Response {
                    request: RequestId(11),
                    shard: 0,
                    outcome: Outcome::Get { slot: 40, value: Some(10) },
                },
            }],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let s = sample();
        assert_eq!(Snapshot::decode(&s.encode()).unwrap(), s);
        assert_eq!(Snapshot::from_framed_bytes(&s.to_framed_bytes()).unwrap(), s);
    }

    #[test]
    fn corrupt_framed_snapshot_is_rejected() {
        let mut bytes = sample().to_framed_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        assert!(Snapshot::from_framed_bytes(&bytes).is_err());
    }

    #[test]
    fn atomic_write_and_load() {
        let dir = std::env::temp_dir().join(format!("indulgent-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        assert!(Snapshot::load(&path).unwrap().is_none());
        let s = sample();
        s.write_to(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap(), Some(s.clone()));
        // Overwrite with a newer snapshot; the rename replaces atomically.
        let mut newer = s;
        newer.applied_through = 100;
        newer.write_to(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap().unwrap().applied_through, 100);
        std::fs::remove_dir_all(&dir).ok();
    }
}
