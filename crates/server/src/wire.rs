//! The length-framed wire codec.
//!
//! Every message on a service connection travels as one *frame*: a
//! 4-byte little-endian payload length followed by the payload bytes.
//! TCP is a byte stream — a frame may arrive split across any number of
//! reads, and several frames may coalesce into one read — so decoding is
//! incremental: feed whatever bytes arrived into a [`FrameDecoder`] and
//! pop complete frames as they materialize. A frame must round-trip
//! byte-identically through *any* read-chunking (the codec proptests
//! enumerate splits), and a header announcing more than [`MAX_FRAME`]
//! bytes is rejected immediately — before buffering the payload — so a
//! corrupt or hostile peer cannot make the server allocate unboundedly.
//!
//! The codec is vendored by design: a u32 length prefix needs no
//! registry dependency, and keeping it in-tree keeps the service's wire
//! surface auditable next to the protocol it carries ([`crate::proto`]).

use std::fmt;
use std::io::{self, Read, Write};

/// Hard bound on a frame's payload size (64 KiB).
///
/// Service messages are tens of bytes; the bound exists to reject
/// corrupt length headers, not to size real traffic.
pub const MAX_FRAME: usize = 64 * 1024;

/// Bytes of the frame header (little-endian u32 payload length).
pub const HEADER_LEN: usize = 4;

/// A wire-level error: oversized frame or a failed socket operation.
#[derive(Debug)]
pub enum WireError {
    /// A frame header announced `announced` bytes, above [`MAX_FRAME`].
    Oversized {
        /// The length the corrupt/hostile header announced.
        announced: u64,
    },
    /// The peer closed the connection mid-frame.
    TruncatedFrame,
    /// An underlying socket read/write failed.
    Io(io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Oversized { announced } => {
                write!(f, "frame header announces {announced} bytes (max {MAX_FRAME})")
            }
            WireError::TruncatedFrame => write!(f, "connection closed mid-frame"),
            WireError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Encodes `payload` as one frame appended to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    assert!(payload.len() <= MAX_FRAME, "frame payload exceeds MAX_FRAME");
    out.extend_from_slice(
        &u32::try_from(payload.len()).expect("bounded by MAX_FRAME").to_le_bytes(),
    );
    out.extend_from_slice(payload);
}

/// Writes `payload` as one frame to `w` (header + payload, flushed).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    encode_frame(payload, &mut buf);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Incremental frame decoder: buffers stream bytes, yields complete
/// payloads.
///
/// `feed` accepts bytes in whatever chunks the socket produced;
/// [`next_frame`](FrameDecoder::next_frame) pops the oldest complete
/// frame, or `None` until more bytes arrive. Decoding is chunking
/// independent: any partition of the same byte stream yields the same
/// frame sequence.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read position inside `buf` (consumed bytes are compacted away
    /// lazily, once the buffer is fully drained).
    pos: usize,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read stream bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame payload, `None` if the buffered bytes
    /// do not yet hold one. An oversized length header errors without
    /// consuming it (the connection is poisoned and should be dropped).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..HEADER_LEN].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            return Err(WireError::Oversized { announced: len as u64 });
        }
        if avail.len() < HEADER_LEN + len {
            self.compact();
            return Ok(None);
        }
        let payload = avail[HEADER_LEN..HEADER_LEN + len].to_vec();
        self.pos += HEADER_LEN + len;
        self.compact();
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed (a nonzero value at EOF means
    /// the peer died mid-frame).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > MAX_FRAME {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// Blocking frame reader over an `io::Read` stream (one decoder per
/// connection). Returns `Ok(None)` on a clean EOF at a frame boundary,
/// [`WireError::TruncatedFrame`] on EOF mid-frame.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    decoder: FrameDecoder,
    chunk: [u8; 4096],
}

impl<R: Read> FrameReader<R> {
    /// Wraps a stream.
    pub fn new(inner: R) -> Self {
        FrameReader { inner, decoder: FrameDecoder::new(), chunk: [0; 4096] }
    }

    /// Reads the next complete frame payload.
    ///
    /// `WouldBlock`/`TimedOut` socket errors surface as `Err(Io(..))` so
    /// callers using read timeouts can poll.
    pub fn read_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(Some(frame));
            }
            let n = self.inner.read(&mut self.chunk)?;
            if n == 0 {
                return if self.decoder.pending() == 0 {
                    Ok(None)
                } else {
                    Err(WireError::TruncatedFrame)
                };
            }
            self.decoder.feed(&self.chunk[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_through_one_feed() {
        let mut wire = Vec::new();
        encode_frame(b"hello", &mut wire);
        encode_frame(b"", &mut wire);
        encode_frame(&[0xff; 300], &mut wire);
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        assert_eq!(d.next_frame().unwrap().unwrap(), b"hello");
        assert_eq!(d.next_frame().unwrap().unwrap(), b"");
        assert_eq!(d.next_frame().unwrap().unwrap(), vec![0xff; 300]);
        assert_eq!(d.next_frame().unwrap(), None);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn split_reads_reassemble() {
        let mut wire = Vec::new();
        encode_frame(b"split me", &mut wire);
        let mut d = FrameDecoder::new();
        for b in &wire {
            assert!(d.pending() < wire.len());
            d.feed(std::slice::from_ref(b));
        }
        assert_eq!(d.next_frame().unwrap().unwrap(), b"split me");
    }

    #[test]
    fn oversized_header_is_rejected_before_payload() {
        let mut d = FrameDecoder::new();
        d.feed(&u32::try_from(MAX_FRAME + 1).unwrap().to_le_bytes());
        assert!(matches!(d.next_frame(), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn max_sized_frame_is_accepted() {
        let payload = vec![7u8; MAX_FRAME];
        let mut wire = Vec::new();
        encode_frame(&payload, &mut wire);
        let mut d = FrameDecoder::new();
        d.feed(&wire);
        assert_eq!(d.next_frame().unwrap().unwrap(), payload);
    }

    #[test]
    fn reader_reports_clean_eof_and_truncation() {
        let mut wire = Vec::new();
        encode_frame(b"whole", &mut wire);
        let mut r = FrameReader::new(&wire[..]);
        assert_eq!(r.read_frame().unwrap().unwrap(), b"whole");
        assert!(r.read_frame().unwrap().is_none(), "EOF at a boundary is clean");

        let mut r = FrameReader::new(&wire[..wire.len() - 2]);
        assert!(matches!(r.read_frame(), Err(WireError::TruncatedFrame)));
    }
}
