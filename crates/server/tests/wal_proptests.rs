//! Property-based tests of the WAL record codec, mirroring the wire
//! codec's suite (`wire_proptests.rs`) with the durability-specific
//! properties on top: arbitrary read chunkings decode identically,
//! truncation at *every* byte offset (a torn append) recovers exactly
//! the longest valid record prefix, payload bit flips are caught by the
//! checksum, and impossible length headers are rejected as corruption
//! before any allocation.

use indulgent_model::{BatchId, ClientId, RequestId};
use indulgent_server::wal::{
    decode_payload, encode_record, replay_bytes, WalDecoder, WalTail, MAX_RECORD, RECORD_HEADER_LEN,
};
use indulgent_server::{AckRecord, KvOp, Outcome, Response, SlotRecord};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = KvOp> {
    (proptest::bool::ANY, any::<u16>(), any::<u32>()).prop_map(|(put, key, value)| {
        if put {
            KvOp::Put { key, value }
        } else {
            KvOp::Get { key }
        }
    })
}

fn ack_strategy() -> impl Strategy<Value = AckRecord> {
    (
        any::<u64>(),
        any::<u64>(),
        op_strategy(),
        (any::<u64>(), any::<u32>(), proptest::bool::ANY, 0u32..8),
    )
        .prop_map(|(client, request, op, (slot, read, hit, shard))| {
            let outcome = match op {
                KvOp::Put { .. } => Outcome::Put { slot },
                KvOp::Get { .. } => Outcome::Get { slot, value: hit.then_some(read) },
            };
            AckRecord {
                client: ClientId(client),
                request: RequestId(request),
                op,
                response: Response { request: RequestId(request), shard, outcome },
            }
        })
}

/// Contiguous slot records (slot = position + 1, like a real WAL) with
/// arbitrary batches and command lists (empty batches included).
fn records() -> impl Strategy<Value = Vec<SlotRecord>> {
    proptest::collection::vec((any::<u64>(), proptest::collection::vec(ack_strategy(), 0..6)), 0..8)
        .prop_map(|rs| {
            rs.into_iter()
                .enumerate()
                .map(|(i, (batch, commands))| SlotRecord {
                    slot: i as u64 + 1,
                    batch: BatchId(batch),
                    commands,
                })
                .collect()
        })
}

/// Encodes `records` into one WAL byte stream, also returning the byte
/// offset of each record's header (plus the final end offset).
fn wire_of(records: &[SlotRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut wire = Vec::new();
    let mut boundaries = vec![0];
    for r in records {
        encode_record(r, &mut wire);
        boundaries.push(wire.len());
    }
    (wire, boundaries)
}

/// Splits `wire` into chunks whose sizes are driven by `cuts` (same
/// helper shape as the wire-codec suite).
fn chunkings(wire: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut chunks = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < wire.len() {
        let step = if cuts.is_empty() { wire.len() } else { cuts[i % cuts.len()] % 97 + 1 };
        let end = (pos + step).min(wire.len());
        chunks.push(wire[pos..end].to_vec());
        pos = end;
        i += 1;
    }
    chunks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Any read chunking of the same WAL byte stream decodes to the same
    // record sequence, ends Clean, and accounts for every byte.
    #[test]
    fn round_trip_through_any_chunking(
        records in records(),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let (wire, _) = wire_of(&records);
        let mut decoder = WalDecoder::new();
        let mut decoded = Vec::new();
        for chunk in chunkings(&wire, &cuts) {
            decoder.feed(&chunk);
            while let Some(payload) = decoder.next_payload() {
                decoded.push(decode_payload(&payload).expect("valid payload"));
            }
        }
        prop_assert_eq!(&decoded, &records);
        prop_assert_eq!(decoder.tail(), WalTail::Clean);
        prop_assert_eq!(decoder.valid_len(), wire.len() as u64);
    }

    // Truncating the stream at EVERY byte offset — every possible torn
    // append a crash can leave — recovers exactly the records whose
    // frames fit, classifies the tail correctly, and reports the valid
    // length a repair should truncate to.
    #[test]
    fn torn_tail_at_every_offset_recovers_longest_prefix(records in records()) {
        let (wire, boundaries) = wire_of(&records);
        for cut in 0..=wire.len() {
            let replay = replay_bytes(&wire[..cut]).expect("prefix decodes");
            let whole = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            prop_assert_eq!(replay.records.len(), whole);
            prop_assert_eq!(&replay.records[..], &records[..whole]);
            let last_boundary = boundaries[whole];
            prop_assert_eq!(replay.valid_len, last_boundary as u64);
            if cut == last_boundary {
                prop_assert_eq!(replay.tail, WalTail::Clean);
            } else {
                prop_assert_eq!(replay.tail, WalTail::Torn { offset: last_boundary as u64 });
            }
        }
    }

    // Flipping any single payload bit is caught by the checksum: the
    // records before the damaged one survive, the stream is poisoned at
    // exactly its header offset, and nothing after resyncs.
    #[test]
    fn payload_bit_flip_is_detected(
        records in records(),
        pick in any::<usize>(),
        byte in any::<usize>(),
        bit in 0u8..8,
    ) {
        prop_assume!(!records.is_empty());
        let (mut wire, boundaries) = wire_of(&records);
        let victim = pick % records.len();
        let start = boundaries[victim];
        let len = boundaries[victim + 1] - start - RECORD_HEADER_LEN;
        // Empty payloads cannot be flipped; flip a header CRC byte then
        // (same detection path: stored checksum disagrees).
        let idx = if len == 0 { start + 4 + byte % 4 } else { start + RECORD_HEADER_LEN + byte % len };
        wire[idx] ^= 1 << bit;
        let replay = replay_bytes(&wire).expect("prefix decodes");
        prop_assert_eq!(replay.records.len(), victim);
        prop_assert_eq!(&replay.records[..], &records[..victim]);
        prop_assert_eq!(replay.tail, WalTail::Corrupt { offset: boundaries[victim] as u64 });
    }

    // A header announcing more than MAX_RECORD bytes is corruption, not
    // a frame to wait for — regardless of how many valid records precede
    // it or what junk follows.
    #[test]
    fn oversized_header_is_rejected_after_any_prefix(
        records in records(),
        excess in 1u32..1_000_000,
        junk in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let (mut wire, boundaries) = wire_of(&records);
        let boundary = *boundaries.last().expect("nonempty boundaries");
        let oversized = u32::try_from(MAX_RECORD).expect("fits") + excess;
        wire.extend_from_slice(&oversized.to_le_bytes());
        wire.extend_from_slice(&junk);
        let replay = replay_bytes(&wire).expect("prefix decodes");
        prop_assert_eq!(replay.records.len(), records.len());
        prop_assert_eq!(replay.tail, WalTail::Corrupt { offset: boundary as u64 });
        prop_assert_eq!(replay.valid_len, boundary as u64);
    }
}
