//! Lease-safety tests: the fast-read path under expiry, renewal,
//! fallback, concurrent writes, and crash recovery.
//!
//! The stale-read detector is the audit itself — every fast read is
//! recorded with its read index and replayed against the decided-log
//! prefix by [`ServiceAudit::check`], so any interleaving that produced
//! a value a sequenced read at that index would not have answered fails
//! the run. The proptest below drives randomized lease timings (TTLs
//! short enough to lapse mid-run, renew cadences that sometimes miss)
//! against concurrent writer+reader sessions and requires the audit to
//! stay clean.

use std::time::Duration;

use indulgent_model::ClientId;
use indulgent_server::{
    lease, shard_dir, EngineConfig, KvEngine, KvService, LeaseConfig, LocalKv, Outcome, ReadPath,
};
use proptest::prelude::*;

fn lease_config(reads: ReadPath) -> EngineConfig {
    EngineConfig::default_5().with_batch_size(1).with_pipeline_depth(2).with_reads(reads)
}

#[test]
fn lease_reads_bypass_the_log_and_pass_the_audit() {
    let engine = KvEngine::spawn(lease_config(ReadPath::Lease));
    let mut kv = LocalKv::connect(&engine.handle(), ClientId(1));
    let put = kv.put(7, 42).expect("put acked");
    let Outcome::Put { slot } = put.outcome else { panic!("unexpected {put:?}") };
    let get = kv.get(7).expect("get acked");
    match get.outcome {
        Outcome::Read { index, value } => {
            assert_eq!(value, Some(42));
            assert!(index >= slot, "read index covers the acked write");
        }
        other => panic!("expected a fast read, got {other:?}"),
    }
    let audit = engine.shutdown();
    assert_eq!(audit.committed_commands(), 1, "the read occupied no slot");
    assert_eq!(audit.fast_reads().len(), 1);
    assert!(!audit.fast_reads()[0].attested, "a healthy lease needs no attest round");
    assert_eq!(audit.fast_reads()[0].epoch, audit.lease_epoch());
    audit.check().expect("audit clean");
}

#[test]
fn quorum_mode_attests_every_read_batch() {
    let engine = KvEngine::spawn(lease_config(ReadPath::Quorum));
    let mut kv = LocalKv::connect(&engine.handle(), ClientId(2));
    kv.put(1, 10).expect("put acked");
    for _ in 0..3 {
        let get = kv.get(1).expect("get acked");
        assert!(matches!(get.outcome, Outcome::Read { value: Some(10), .. }));
    }
    let audit = engine.shutdown();
    assert_eq!(audit.committed_commands(), 1);
    assert_eq!(audit.fast_reads().len(), 3);
    assert!(
        audit.fast_reads().iter().all(|r| r.attested),
        "quorum mode never trusts the lease alone"
    );
    audit.check().expect("audit clean");
}

#[test]
fn expired_lease_falls_back_to_the_quorum_rung() {
    // A 1 ms TTL with a 60 s renew cadence guarantees the lease has
    // lapsed by the time any read is served, so every read must take
    // the attest fallback — and still verify against the log replay.
    let timing = LeaseConfig::default()
        .with_ttl(Duration::from_millis(1))
        .with_renew_every(Duration::from_secs(60));
    let engine = KvEngine::spawn(lease_config(ReadPath::Lease).with_lease(timing));
    let mut kv = LocalKv::connect(&engine.handle(), ClientId(3));
    kv.put(5, 50).expect("put acked");
    std::thread::sleep(Duration::from_millis(5));
    let get = kv.get(5).expect("get acked");
    assert!(matches!(get.outcome, Outcome::Read { value: Some(50), .. }));
    let audit = engine.shutdown();
    assert!(!audit.fast_reads().is_empty());
    assert!(audit.fast_reads().iter().all(|r| r.attested), "lapsed lease must attest");
    audit.check().expect("audit clean");
}

#[test]
fn sequenced_escape_hatch_keeps_reads_in_the_log() {
    let engine = KvEngine::spawn(lease_config(ReadPath::Sequenced));
    let mut kv = LocalKv::connect(&engine.handle(), ClientId(4));
    kv.put(9, 90).expect("put acked");
    let get = kv.get(9).expect("get acked");
    assert!(
        matches!(get.outcome, Outcome::Get { value: Some(90), .. }),
        "`--reads log` sequences reads exactly as before"
    );
    let audit = engine.shutdown();
    assert_eq!(audit.committed_commands(), 2, "the read occupied a slot");
    assert!(audit.fast_reads().is_empty());
    assert_eq!(audit.lease_epoch(), 0, "no lease machinery runs at all");
    audit.check().expect("audit clean");
}

#[test]
fn fast_read_retries_replay_the_cached_ack() {
    use indulgent_model::RequestId;
    use indulgent_server::KvOp;
    let engine = KvEngine::spawn(lease_config(ReadPath::Lease));
    let mut kv = LocalKv::connect(&engine.handle(), ClientId(5));
    kv.put(2, 20).expect("put acked");
    let first = kv.call_with(RequestId(10), KvOp::Get { key: 2 }).expect("read acked");
    let retry = kv.call_with(RequestId(10), KvOp::Get { key: 2 }).expect("retry acked");
    assert_eq!(first, retry, "a read retry replays the original read index and value");
    let audit = engine.shutdown();
    assert_eq!(audit.fast_reads().len(), 1, "the retry served no second fast read");
    assert!(audit.dedup_hits() >= 1);
    audit.check().expect("audit clean");
}

#[test]
fn rebooted_leader_serves_only_under_a_fresh_epoch() {
    // The restart-storm safety case: a `kill -9`'d leader must not serve
    // fast reads on the promises made to its previous incarnation. Each
    // boot burns epoch+1 to disk before serving, so the killed
    // incarnation's epoch is invalidated by its successor's first act.
    let dir = std::env::temp_dir().join(format!("indulgent-lease-reboot-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = || {
        lease_config(ReadPath::Lease)
            .with_durability(indulgent_server::DurabilityConfig::new(&dir).with_snapshot_every(4))
    };

    let engine = KvEngine::spawn(config());
    let mut kv = LocalKv::connect(&engine.handle(), ClientId(6));
    kv.put(1, 11).expect("put acked");
    let read = kv.get(1).expect("fast read acked");
    assert!(matches!(read.outcome, Outcome::Read { value: Some(11), .. }));
    let first_epoch = lease::load_epoch(&shard_dir(&dir, 0)).expect("epoch burned");
    assert!(first_epoch >= 1, "serving burned an epoch first");
    drop(kv);
    engine.kill();

    // The stored epoch is exactly what the killed incarnation served
    // under — nothing newer was burned by dying.
    assert_eq!(
        lease::load_epoch(&shard_dir(&dir, 0)).expect("epoch survives the kill"),
        first_epoch
    );

    let engine = KvEngine::spawn(config());
    let mut kv = LocalKv::connect(&engine.handle(), ClientId(7));
    let read = kv.get(1).expect("fast read after reboot");
    assert!(matches!(read.outcome, Outcome::Read { value: Some(11), .. }));
    let second_epoch = lease::load_epoch(&shard_dir(&dir, 0)).expect("epoch re-burned");
    assert!(second_epoch > first_epoch, "the reboot invalidated the old epoch before serving");
    let audit = engine.shutdown();
    assert_eq!(audit.lease_epoch(), second_epoch);
    assert!(audit.fast_reads().iter().all(|r| r.epoch == second_epoch));
    audit.check().expect("audit clean across the reboot");
    std::fs::remove_dir_all(&dir).ok();
}

/// One randomized interleaving: a writer hammering shared keys while a
/// reader mixes private read-your-writes probes with shared-key reads,
/// under lease timings short enough to lapse and renew mid-run.
fn run_interleaving(ttl_micros: u64, renew_micros: u64, ops: u32, reads: ReadPath) {
    let timing = LeaseConfig::default()
        .with_ttl(Duration::from_micros(ttl_micros))
        .with_renew_every(Duration::from_micros(renew_micros));
    let engine = KvEngine::spawn(
        EngineConfig::default_5()
            .with_batch_size(2)
            .with_pipeline_depth(3)
            .with_reads(reads)
            .with_lease(timing),
    );
    let handle = engine.handle();
    let writer = std::thread::spawn({
        let handle = handle.clone();
        move || {
            let mut kv = LocalKv::connect(&handle, ClientId(100));
            for i in 0..ops {
                kv.put(u16::try_from(i % 4).unwrap(), i).expect("write acked");
            }
        }
    });
    let reader = std::thread::spawn(move || {
        let mut kv = LocalKv::connect(&handle, ClientId(200));
        for i in 0..ops {
            if i % 3 == 0 {
                // Read-your-writes on a private key nobody else touches.
                kv.put(1000, i).expect("private write acked");
                let got = kv.get(1000).expect("private read acked");
                let value = match got.outcome {
                    Outcome::Read { value, .. } | Outcome::Get { value, .. } => value,
                    other => panic!("unexpected outcome {other:?}"),
                };
                assert_eq!(value, Some(i), "a session reads its own writes");
            } else {
                // Shared-key read: any decided value is fine — the audit
                // replay decides whether it was fresh enough.
                let _ = kv.get(u16::try_from(i % 4).unwrap()).expect("shared read acked");
            }
        }
    });
    writer.join().expect("writer clean");
    reader.join().expect("reader clean");
    let audit = engine.shutdown();
    audit.check().expect("no stale fast read survived the replay");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized lease expiry/renewal racing concurrent writes: every
    /// fast read the engine dares to serve must match the sequenced
    /// replay at its read index, whatever the timing.
    #[test]
    fn interleaved_lease_timings_never_serve_stale_reads(
        ttl_micros in 200u64..20_000,
        renew_div in 1u64..8,
        ops in 6u32..18,
        quorum_mode in proptest::bool::ANY,
    ) {
        let reads = if quorum_mode { ReadPath::Quorum } else { ReadPath::Lease };
        run_interleaving(ttl_micros, ttl_micros / renew_div, ops, reads);
    }
}
