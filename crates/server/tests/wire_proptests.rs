//! Property-based tests of the frame codec: byte-identical round-trips
//! through arbitrary read-chunkings, and oversized-frame rejection —
//! plus the stats scrape payload riding the same framing.

use indulgent_obs::Histogram;
use indulgent_server::wire::{encode_frame, FrameDecoder, FrameReader, MAX_FRAME};
use indulgent_server::{ProtoError, StatsReport};
use proptest::prelude::*;

/// A batch of frame payloads of assorted sizes (empty frames included).
fn payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..12)
}

/// Splits `wire` into chunks whose sizes are driven by `cuts`, covering
/// partial (byte-by-byte), exact, and coalesced (many frames per read)
/// deliveries of the same byte stream.
fn chunkings(wire: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut chunks = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < wire.len() {
        let step = if cuts.is_empty() { wire.len() } else { cuts[i % cuts.len()] % 97 + 1 };
        let end = (pos + step).min(wire.len());
        chunks.push(wire[pos..end].to_vec());
        pos = end;
        i += 1;
    }
    chunks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Any chunking of the same byte stream decodes to the same frames:
    // the decoder is chunking-independent by construction.
    #[test]
    fn round_trip_through_any_chunking(
        frames in payloads(),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            encode_frame(f, &mut wire);
        }
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for chunk in chunkings(&wire, &cuts) {
            decoder.feed(&chunk);
            while let Some(frame) = decoder.next_frame().expect("well-formed stream") {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(&decoded, &frames);
        prop_assert_eq!(decoder.pending(), 0);
    }

    // The blocking reader agrees with the incremental decoder on the
    // same stream (it is the per-connection wrapper the server uses).
    #[test]
    fn reader_matches_decoder(frames in payloads()) {
        let mut wire = Vec::new();
        for f in &frames {
            encode_frame(f, &mut wire);
        }
        let mut reader = FrameReader::new(&wire[..]);
        let mut decoded = Vec::new();
        while let Some(frame) = reader.read_frame().expect("well-formed stream") {
            decoded.push(frame);
        }
        prop_assert_eq!(&decoded, &frames);
    }

    // A header announcing more than MAX_FRAME bytes errors immediately —
    // before any of the announced payload arrives — regardless of how
    // many valid frames preceded it.
    #[test]
    fn oversized_header_rejected_after_any_prefix(
        frames in payloads(),
        excess in 1u32..1_000_000,
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            encode_frame(f, &mut wire);
        }
        let announced = u32::try_from(MAX_FRAME).expect("fits") + excess;
        wire.extend_from_slice(&announced.to_le_bytes());
        // Note: no payload bytes follow the poisoned header.
        let mut decoder = FrameDecoder::new();
        decoder.feed(&wire);
        let mut popped = 0;
        let err = loop {
            match decoder.next_frame() {
                Ok(Some(_)) => popped += 1,
                Ok(None) => prop_assert!(false, "oversized header must error, got None"),
                Err(e) => break e,
            }
        };
        prop_assert_eq!(popped, frames.len());
        prop_assert!(
            matches!(err, indulgent_server::WireError::Oversized { announced: a } if a == u64::from(announced))
        );
    }

    // Truncating a stream mid-frame leaves the tail pending (the reader
    // turns that into TruncatedFrame at EOF); truncating at a boundary
    // leaves nothing.
    #[test]
    fn truncation_is_detected(frames in payloads(), cut_back in any::<usize>()) {
        let mut wire = Vec::new();
        for f in &frames {
            encode_frame(f, &mut wire);
        }
        prop_assume!(!wire.is_empty());
        let cut = wire.len() - (cut_back % wire.len() + 1); // strictly shorter
        let mut reader = FrameReader::new(&wire[..cut]);
        let result = loop {
            match reader.read_frame() {
                Ok(Some(_)) => {}
                other => break other,
            }
        };
        // Whether this is a clean EOF or a truncation depends on where
        // the cut fell; what must never happen is a successful decode of
        // a frame the stream didn't finish, or a hang.
        match result {
            Ok(None) => {}
            Err(indulgent_server::WireError::TruncatedFrame) => {}
            other => prop_assert!(false, "unexpected terminal state: {:?}", other.map(|_| "frame")),
        }
    }
}

/// Builds a stats report the way the engine does: by recording samples
/// into live histograms and snapshotting, so the `count == Σ buckets`
/// invariant the wire format relies on holds by construction.
fn report_from(counters: &[u64], samples: &[u64]) -> StatsReport {
    let hists: [Histogram; 6] = std::array::from_fn(|_| Histogram::new());
    for (i, &v) in samples.iter().enumerate() {
        hists[i % hists.len()].record(v);
    }
    let mut report = StatsReport::zero(counters[0] as u32, counters[1] as u32 | 1);
    report.slots = counters[2];
    report.committed = counters[3];
    report.dedup_hits = counters[4];
    report.reads_lease = counters[5];
    report.reads_quorum = counters[6];
    report.reads_sequenced = counters[7];
    report.submit_seal = hists[0].snapshot();
    report.seal_decide = hists[1].snapshot();
    report.decide_apply = hists[2].snapshot();
    report.apply_ack = hists[3].snapshot();
    report.wal_fsync = hists[4].snapshot();
    report.seal_depth = hists[5].snapshot();
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // A stats scrape survives the full wire path — encode, frame, any
    // read-chunking, decode — bit-for-bit, histograms included.
    #[test]
    fn stats_report_round_trips_through_any_chunking(
        counters in proptest::collection::vec(any::<u64>(), 8..9),
        samples in proptest::collection::vec(any::<u64>(), 0..60),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let report = report_from(&counters, &samples);
        let mut wire = Vec::new();
        encode_frame(&report.encode(), &mut wire);
        let mut decoder = FrameDecoder::new();
        let mut payloads = Vec::new();
        for chunk in chunkings(&wire, &cuts) {
            decoder.feed(&chunk);
            while let Some(frame) = decoder.next_frame().expect("well-formed stream") {
                payloads.push(frame);
            }
        }
        prop_assert_eq!(payloads.len(), 1);
        let decoded = StatsReport::decode(&payloads[0]).expect("valid payload");
        prop_assert_eq!(decoded, report);
    }

    // The payload is fixed-size: any strict prefix is rejected as
    // truncated, and any appended garbage as trailing bytes — a scrape
    // can never silently mis-parse into a different report.
    #[test]
    fn stats_report_rejects_truncation_and_padding(
        counters in proptest::collection::vec(any::<u64>(), 8..9),
        samples in proptest::collection::vec(any::<u64>(), 0..30),
        cut_back in any::<usize>(),
        pad in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let payload = report_from(&counters, &samples).encode();
        let cut = payload.len() - (cut_back % payload.len() + 1);
        prop_assert_eq!(StatsReport::decode(&payload[..cut]), Err(ProtoError::Truncated));
        let mut padded = payload;
        padded.extend_from_slice(&pad);
        prop_assert_eq!(StatsReport::decode(&padded), Err(ProtoError::TrailingBytes));
    }
}
