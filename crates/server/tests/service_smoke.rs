//! In-crate smoke tests of the engine + server stack (the heavier
//! differential and fault-injection suites live in
//! `crates/integration/tests/server.rs`).

use std::time::Duration;

use indulgent_model::{ClientId, RequestId};
use indulgent_server::{
    EngineConfig, KvEngine, KvOp, KvServer, KvService, LocalKv, Outcome, RemoteKv,
};

/// Small, deterministic engine sizing for tests: batch of 1 so every
/// request occupies its own slot immediately.
fn test_config() -> EngineConfig {
    EngineConfig::default_5().with_batch_size(1).with_pipeline_depth(2)
}

#[test]
fn local_session_reads_its_own_writes() {
    let engine = KvEngine::spawn(test_config());
    let mut kv = LocalKv::connect(&engine.handle(), ClientId(1));
    let put = kv.put(7, 42).expect("put acked");
    let get = kv.get(7).expect("get acked");
    match (put.outcome, get.outcome) {
        (Outcome::Put { slot: ps }, Outcome::Get { slot: gs, value }) => {
            assert_eq!(value, Some(42));
            assert!(gs > ps, "the read is sequenced after the write");
        }
        other => panic!("unexpected outcomes: {other:?}"),
    }
    let audit = engine.shutdown();
    assert_eq!(audit.committed_commands(), 2);
    audit.check().expect("audit clean");
}

#[test]
fn duplicate_request_ids_apply_once() {
    let engine = KvEngine::spawn(test_config());
    let mut kv = LocalKv::connect(&engine.handle(), ClientId(3));
    let first = kv.call_with(RequestId(0), KvOp::Put { key: 1, value: 10 }).expect("acked");
    // Same (client, request) again: the cached ack replays, no new slot.
    let retry = kv.call_with(RequestId(0), KvOp::Put { key: 1, value: 10 }).expect("acked");
    assert_eq!(first, retry, "retries replay the original acknowledgement");
    let audit = engine.shutdown();
    assert_eq!(audit.committed_commands(), 1, "the retry did not re-apply");
    assert!(audit.dedup_hits() >= 1);
    audit.check().expect("audit clean");
}

#[test]
fn remote_session_matches_local_semantics_over_tcp() {
    let server = KvServer::bind("127.0.0.1:0", test_config()).expect("bind");
    let addr = server.addr();
    let mut remote = RemoteKv::connect(addr, ClientId(7)).expect("connect");
    remote.put(5, 55).expect("put over tcp");
    let got = remote.get(5).expect("get over tcp");
    match got.outcome {
        Outcome::Get { value, .. } => assert_eq!(value, Some(55)),
        other => panic!("unexpected outcome: {other:?}"),
    }
    // A local session against the same engine observes the write too.
    let mut local = LocalKv::connect(&server.engine(), ClientId(8));
    let local_got = local.get(5).expect("get locally");
    match local_got.outcome {
        Outcome::Get { value, .. } => assert_eq!(value, Some(55)),
        other => panic!("unexpected outcome: {other:?}"),
    }
    drop((remote, local));
    let audit = server.shutdown();
    assert_eq!(audit.committed_commands(), 3);
    audit.check().expect("audit clean");
}

#[test]
fn batched_pipeline_commits_everything_on_shutdown() {
    // Bigger batches + linger: interleave many clients, rely on the
    // shutdown drain to seal the trailing partial batch.
    let engine =
        KvEngine::spawn(EngineConfig::default_5().with_batch_size(4).with_pipeline_depth(3));
    let handle = engine.handle();
    let mut sessions: Vec<LocalKv> =
        (0..3).map(|c| LocalKv::connect(&handle, ClientId(c))).collect();
    for round in 0..5u32 {
        for kv in &mut sessions {
            kv.put(round as u16, round * 100 + kv.client().0 as u32).expect("put acked");
        }
    }
    let audit = engine.shutdown();
    assert_eq!(audit.committed_commands(), 15);
    audit.check().expect("audit clean");
}

#[test]
fn engine_drains_within_a_bounded_shutdown() {
    // Shutdown with work still in the open batch: the drain seals and
    // commits it rather than hanging.
    let engine =
        KvEngine::spawn(EngineConfig::default_5().with_batch_size(64).with_pipeline_depth(2));
    let handle = engine.handle();
    let (submit, acks) = handle.connect();
    use indulgent_server::Request;
    assert!(submit.submit(Request {
        client: ClientId(1),
        request: RequestId(0),
        op: KvOp::Put { key: 1, value: 1 },
    }));
    // Don't wait for the ack; shut down immediately.
    let audit = engine.shutdown();
    assert_eq!(audit.committed_commands(), 1, "open batch sealed on shutdown");
    audit.check().expect("audit clean");
    // The ack was still delivered before the drain finished.
    let ack = acks.recv_timeout(Duration::from_secs(1)).expect("ack delivered");
    let indulgent_server::Outbound::Ack(resp) = ack else { panic!("expected an ack, got {ack:?}") };
    assert_eq!(resp.request, RequestId(0));
}
