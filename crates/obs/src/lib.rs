//! `indulgent-obs`: the observability layer — lock-free metrics and a
//! bounded flight recorder for the whole indulgent stack.
//!
//! The repo proves its claims with *external* harnesses (client-side
//! timers, post-hoc audits); this crate makes the running system
//! observable from the *inside* without perturbing what it measures:
//!
//! * [`Counter`] — a relaxed-atomic monotonic counter. Increments are a
//!   few nanoseconds, never synchronize, and **never allocate** — safe
//!   on the allocation-free hot paths the zero-alloc regression test
//!   guards (generalizing the sim crate's `EngineCounters` idiom).
//! * [`Histogram`] — a fixed-bucket log2 latency histogram: 64
//!   power-of-two buckets, each a relaxed atomic. [`Histogram::record`]
//!   is two `fetch_add`s and a `fetch_max` — no locks, **zero
//!   allocations** — and p50/p95/p99/max are derived from the bucket
//!   counts at *read* time by [`HistogramSnapshot::percentile`], so the
//!   record path pays nothing for the percentiles the scrape reports.
//! * the **registry** — named [`MetricFamily`]s registered once at
//!   startup ([`register_family`]) and walked at dump time
//!   ([`dump_to_string`], [`visit_families`]). Registration takes a
//!   lock and may allocate; recording into a registered family never
//!   does. The sim round engine, the runtime session, the log driver,
//!   the lease agents, and the server engine each register one family.
//! * [`FlightRecorder`] — a bounded ring of recent structured
//!   [`FlightEvent`]s (instance starts/decisions, lease transitions,
//!   WAL and snapshot operations, recovery steps). The ring is
//!   pre-allocated at construction and overwrites its oldest entry when
//!   full; [`FlightRecorder::dump_to`] writes the retained window in
//!   chronological order, so a crashed or audit-failed server ships a
//!   black-box recording instead of just its final state.
//!
//! # Bucket layout
//!
//! Bucket `0` counts zero values; bucket `i >= 1` counts values in
//! `[2^(i-1), 2^i)` (the last bucket absorbs everything above). A
//! percentile reports its bucket's inclusive upper bound, clamped to
//! the observed maximum — an over-approximation by at most 2x, which
//! is the precision a log2 sketch buys for 64 words of storage. Record
//! nanoseconds and the buckets span 1 ns to ~584 years; record queue
//! depths and they span 0 to `u64::MAX`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of log2 buckets a [`Histogram`] holds (enough for any `u64`).
pub const BUCKETS: usize = 64;

/// A relaxed-atomic monotonic counter: the cheapest possible metric.
///
/// `const`-constructible, so families are plain `static`s with no
/// lazy-init branch on the record path.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` (relaxed; never synchronizes, never allocates).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (only meaningful while nothing records).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// The log2 bucket a value falls into: 0 for 0, else `floor(log2(v)) + 1`,
/// capped at the last bucket (which absorbs values at and above `2^62`).
#[must_use]
const fn bucket_of(value: u64) -> usize {
    let b = (u64::BITS - value.leading_zeros()) as usize;
    if b >= BUCKETS {
        BUCKETS - 1
    } else {
        b
    }
}

/// The inclusive upper bound of bucket `i` (`u64::MAX` for the last).
#[must_use]
const fn bucket_upper(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free fixed-bucket log2 histogram.
///
/// [`record`](Histogram::record) is wait-free and allocation-free:
/// one bucket `fetch_add`, one sum `fetch_add`, one `fetch_max`.
/// Percentiles are *not* computed here — take a
/// [`snapshot`](Histogram::snapshot) and ask it.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        // `[const { ... }; N]` repeats the const block, not a shared value.
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Zero allocations, no locks.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    ///
    /// Buckets are read one by one (relaxed), so a snapshot taken while
    /// recorders run may tear by a few in-flight observations — fine
    /// for monitoring, which is what this is for.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
            count += *b;
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every bucket (only meaningful while nothing records).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A point-in-time copy of a [`Histogram`]: plain data, wire- and
/// JSON-friendly, mergeable across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see the module docs for layout).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// The largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub const fn empty() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// The value at quantile `q` in `[0, 1]`: the inclusive upper bound
    /// of the bucket where the cumulative count crosses `q * count`,
    /// clamped to the observed maximum. Zero when empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The arithmetic mean of the observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self` — the cross-shard aggregate. Bucket
    /// counts and sums add; maxima take the larger.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The difference `self - earlier`, bucket by bucket (saturating,
    /// in case a reset happened in between). `max` is kept from `self`:
    /// maxima do not subtract.
    #[must_use]
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (d, (a, b)) in buckets.iter_mut().zip(self.buckets.iter().zip(&earlier.buckets)) {
            *d = a.saturating_sub(*b);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

/// Receives one family's metrics during a registry walk.
pub trait MetricSink {
    /// One named counter value.
    fn counter(&mut self, name: &str, value: u64);
    /// One named histogram snapshot.
    fn histogram(&mut self, name: &str, snap: &HistogramSnapshot);
}

/// A named group of metrics a subsystem exposes to the registry.
///
/// Implementors are `static`s: the registry stores `&'static dyn`
/// references, so families live for the process and recording into
/// them is untouched by the registry's lock.
pub trait MetricFamily: Sync {
    /// The family's name, e.g. `"sim_engine"` or `"server_engine"`.
    fn name(&self) -> &'static str;
    /// Pushes every metric of the family into `sink`.
    fn emit(&self, sink: &mut dyn MetricSink);
}

static REGISTRY: Mutex<Vec<&'static dyn MetricFamily>> = Mutex::new(Vec::new());

/// Registers a family (idempotent by name: a second registration under
/// an already-registered name is ignored). Takes a lock and may
/// allocate — call it from startup paths, not record paths.
pub fn register_family(family: &'static dyn MetricFamily) {
    let mut reg = REGISTRY.lock().expect("metric registry poisoned");
    if reg.iter().all(|f| f.name() != family.name()) {
        reg.push(family);
    }
}

/// Walks every registered family in registration order.
pub fn visit_families(mut visit: impl FnMut(&'static dyn MetricFamily)) {
    let reg = REGISTRY.lock().expect("metric registry poisoned");
    for f in reg.iter() {
        visit(*f);
    }
}

/// Renders every registered family as `family.metric value` lines
/// (histograms report `count/p50/p99/max`) — the `--stats-every` dump
/// format.
#[must_use]
pub fn dump_to_string() -> String {
    struct Lines<'a> {
        family: &'static str,
        out: &'a mut String,
    }
    impl MetricSink for Lines<'_> {
        fn counter(&mut self, name: &str, value: u64) {
            let _ = writeln!(self.out, "{}.{name} {value}", self.family);
        }
        fn histogram(&mut self, name: &str, snap: &HistogramSnapshot) {
            let _ = writeln!(
                self.out,
                "{}.{name} count={} p50={} p99={} max={}",
                self.family,
                snap.count,
                snap.percentile(0.50),
                snap.percentile(0.99),
                snap.max
            );
        }
    }
    let mut out = String::new();
    visit_families(|f| f.emit(&mut Lines { family: f.name(), out: &mut out }));
    out
}

/// What a [`FlightEvent`] records — the black-box vocabulary shared by
/// every subsystem that carries a recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant names are the documentation
pub enum FlightKind {
    /// A consensus instance was started (`a` = local instance, `b` = batch id).
    InstanceStart,
    /// An instance's first decision arrived (`a` = local instance, `b` = batch id).
    InstanceDecide,
    /// A decided slot was applied (`a` = slot, `b` = commands in it).
    SlotApplied,
    /// The WAL was fsynced at a slot boundary (`a` = slot, `b` = sync nanos).
    WalSync,
    /// A checkpoint folded the prefix (`a` = applied-through slot).
    Checkpoint,
    /// The leader lease was renewed (`a` = epoch, `b` = healthy grants).
    LeaseRenewed,
    /// Reads fell off the lease/quorum ladder to sequencing (`a` = reads demoted).
    ReadsDemoted,
    /// Recovery loaded a snapshot (`a` = its applied-through slot).
    RecoveredSnapshot,
    /// Recovery replayed the WAL tail (`a` = records replayed).
    RecoveredWal,
    /// A strictly newer lease epoch was burned to disk (`a` = epoch).
    EpochBurned,
    /// The replay audit failed (`a` = shard).
    AuditViolation,
    /// The subsystem is unwinding from a panic (stall watchdog, broken
    /// invariant); the dump that follows is the crash recording.
    Panic,
    /// Clean shutdown reached this subsystem.
    Shutdown,
}

impl FlightKind {
    /// The event's dump label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FlightKind::InstanceStart => "instance_start",
            FlightKind::InstanceDecide => "instance_decide",
            FlightKind::SlotApplied => "slot_applied",
            FlightKind::WalSync => "wal_sync",
            FlightKind::Checkpoint => "checkpoint",
            FlightKind::LeaseRenewed => "lease_renewed",
            FlightKind::ReadsDemoted => "reads_demoted",
            FlightKind::RecoveredSnapshot => "recovered_snapshot",
            FlightKind::RecoveredWal => "recovered_wal",
            FlightKind::EpochBurned => "epoch_burned",
            FlightKind::AuditViolation => "audit_violation",
            FlightKind::Panic => "panic",
            FlightKind::Shutdown => "shutdown",
        }
    }
}

/// One recorded event: a kind plus two integer operands (see each
/// [`FlightKind`] variant for what `a`/`b` carry). Fixed-size on
/// purpose — recording never formats or allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic sequence number (total events recorded, not retained).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub micros: u64,
    /// What happened.
    pub kind: FlightKind,
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
}

#[derive(Debug)]
struct FlightRing {
    events: Vec<FlightEvent>,
    /// Next write position once the ring is full (wrap cursor).
    next: usize,
    seq: u64,
}

/// A bounded ring of recent [`FlightEvent`]s — the black-box recorder.
///
/// The ring is allocated once at construction; recording overwrites the
/// oldest event when full and never allocates. The mutex is uncontended
/// in the engine (one driver thread records) and exists so dumps from a
/// panic hook or another thread are safe.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    start: Instant,
    ring: Mutex<FlightRing>,
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a flight recorder retains at least one event");
        FlightRecorder {
            capacity,
            start: Instant::now(),
            ring: Mutex::new(FlightRing { events: Vec::with_capacity(capacity), next: 0, seq: 0 }),
        }
    }

    /// Records one event (allocation-free: the ring is pre-sized).
    pub fn record(&self, kind: FlightKind, a: u64, b: u64) {
        let micros = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        let seq = ring.seq;
        ring.seq += 1;
        let event = FlightEvent { seq, micros, kind, a, b };
        if ring.events.len() < self.capacity {
            ring.events.push(event);
        } else {
            let next = ring.next;
            ring.events[next] = event;
            ring.next = (next + 1) % self.capacity;
        }
    }

    /// Total events ever recorded (retained or overwritten).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.ring.lock().expect("flight ring poisoned").seq
    }

    /// The retained window in chronological order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let ring = self.ring.lock().expect("flight ring poisoned");
        let mut out = Vec::with_capacity(ring.events.len());
        out.extend_from_slice(&ring.events[ring.next..]);
        out.extend_from_slice(&ring.events[..ring.next]);
        out
    }

    /// Writes the retained window as one `+micros seq kind a b` line per
    /// event, oldest first, headed by a `# flight-recorder` banner —
    /// the `flight-<shard>.log` format CI ships on failure.
    pub fn dump_to(&self, w: &mut dyn Write) -> io::Result<()> {
        let events = self.snapshot();
        let total = self.recorded();
        writeln!(w, "# flight-recorder: {} of {total} events retained", events.len())?;
        for e in &events {
            writeln!(w, "+{}us seq={} {} a={} b={}", e.micros, e.seq, e.kind.label(), e.a, e.b)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of((1 << 62) - 1), 62);
        assert_eq!(bucket_of(1 << 62), BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_percentiles_come_from_buckets() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1110);
        assert_eq!(s.max, 1000);
        // p50 lands in the bucket of 3..4; upper bounds clamp to max.
        assert!(s.percentile(0.5) >= 3 && s.percentile(0.5) <= 7);
        assert_eq!(s.percentile(1.0), 1000);
        assert_eq!(s.percentile(0.0), 1); // rank clamps to the first observation
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s, HistogramSnapshot::empty());
    }

    #[test]
    fn snapshots_merge_and_diff() {
        let h = Histogram::new();
        h.record(8);
        h.record(16);
        let a = h.snapshot();
        h.record(1_000_000);
        let b = h.snapshot();
        let d = b.since(&a);
        assert_eq!(d.count, 1);
        assert_eq!(d.sum, 1_000_000);
        let mut m = a;
        m.merge(&d);
        assert_eq!(m.count, b.count);
        assert_eq!(m.sum, b.sum);
        assert_eq!(m.max, 1_000_000);
    }

    #[test]
    fn max_value_records_into_the_last_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 1);
        assert_eq!(s.percentile(0.5), u64::MAX);
    }

    struct TestFamily {
        hits: Counter,
    }
    impl MetricFamily for TestFamily {
        fn name(&self) -> &'static str {
            "obs_test_family"
        }
        fn emit(&self, sink: &mut dyn MetricSink) {
            sink.counter("hits", self.hits.get());
        }
    }

    #[test]
    fn registry_walks_registered_families_once() {
        static FAMILY: TestFamily = TestFamily { hits: Counter::new() };
        register_family(&FAMILY);
        register_family(&FAMILY); // idempotent by name
        FAMILY.hits.add(7);
        let dump = dump_to_string();
        let lines: Vec<&str> =
            dump.lines().filter(|l| l.starts_with("obs_test_family.hits")).collect();
        assert_eq!(lines, ["obs_test_family.hits 7"]);
    }

    #[test]
    fn flight_recorder_retains_the_most_recent_window() {
        let r = FlightRecorder::new(4);
        for i in 0..10u64 {
            r.record(FlightKind::SlotApplied, i, 0);
        }
        let events = r.snapshot();
        assert_eq!(r.recorded(), 10);
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9], "oldest events were overwritten, order preserved");
        let mut dump = Vec::new();
        r.dump_to(&mut dump).unwrap();
        let text = String::from_utf8(dump).unwrap();
        assert!(text.starts_with("# flight-recorder: 4 of 10 events retained"));
        assert!(text.contains("slot_applied a=9"));
    }
}
