#!/usr/bin/env python3
"""Warn (non-fatally) when benchmark metrics regress against baselines.

Usage:
    perf_guard.py BASELINE.json FRESH.json [METRIC] [BASELINE FRESH METRIC ...]
                  [--threshold 0.15]

Takes one or more (baseline-json, fresh-json, metric) triples and compares
the metric value of each freshly measured bench JSON against its committed
baseline. The metric is a dotted path into the JSON, where a path segment
may filter a list of objects with `[key=value]`:

    backends[name=incremental-serial].schedules_per_second   (BENCH_sweep.json)
    scenarios[name=batch8-depth4].commands_per_second        (BENCH_log.json)
    sharded.scenarios[shards=4].commands_per_second          (BENCH_server.json)

A metric may carry a per-triple threshold suffix `@FRACTION`
(e.g. `sharded.scenarios[shards=1].commands_per_second@0.10` warns on a
>10% drop for that triple only), overriding the global `--threshold`.

A metric prefixed with `~` is lower-is-better (a latency or an overhead
number): the guard warns when it *rises* past the threshold instead of
when it drops:

    ~stage_latency.read_heavy.apply_ack.p99_us@1.0      (BENCH_server.json)

For backward compatibility, a lone BASELINE FRESH pair defaults to the
sweep metric above. A drop larger than the threshold emits a GitHub
Actions `::warning::` annotation (and a plain line for local runs) but
always exits 0: CI runners' throughput is noisy, so the guard flags
trajectories for a human instead of failing builds.
"""

import json
import re
import sys

DEFAULT_METRIC = "backends[name=incremental-serial].schedules_per_second"
SEGMENT = re.compile(r"^(?P<key>[^\[\]]+)(?:\[(?P<fk>[^=\]]+)=(?P<fv>[^\]]+)\])?$")


def select(data, metric: str, path: str) -> float:
    """Resolves a dotted metric path, with `[key=value]` list filters."""
    node = data
    for raw in metric.split("."):
        m = SEGMENT.match(raw)
        if not m:
            raise KeyError(f"{path}: malformed metric segment {raw!r}")
        node = node[m.group("key")]
        if m.group("fk") is not None:
            fk, fv = m.group("fk"), m.group("fv")
            matches = [row for row in node if str(row.get(fk)) == fv]
            if not matches:
                raise KeyError(f"{path}: no entry with {fk}={fv} under {m.group('key')!r}")
            node = matches[0]
    return float(node)


def value(path: str, metric: str) -> float:
    with open(path, encoding="utf-8") as f:
        return select(json.load(f), metric, path)


def main(argv: list[str]) -> int:
    args = list(argv[1:])
    threshold = 0.15
    if "--threshold" in args:
        i = args.index("--threshold")
        threshold = float(args[i + 1])
        del args[i : i + 2]
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    if len(args) == 2:  # legacy form: baseline + fresh, sweep metric
        args.append(DEFAULT_METRIC)
    if len(args) % 3 != 0:
        print(__doc__, file=sys.stderr)
        return 2

    for baseline_path, fresh_path, metric in zip(args[0::3], args[1::3], args[2::3]):
        limit = threshold
        if "@" in metric:
            metric, suffix = metric.rsplit("@", 1)
            limit = float(suffix)
        lower_is_better = metric.startswith("~")
        if lower_is_better:
            metric = metric[1:]
        baseline = value(baseline_path, metric)
        fresh = value(fresh_path, metric)
        change = (fresh - baseline) / baseline
        # Normalize so positive `gain` always means "got better".
        gain = -change if lower_is_better else change
        verdict = "improved" if gain >= 0 else "regressed"
        direction = "rose" if lower_is_better else "dropped"
        print(
            f"{metric}: baseline {baseline:,.0f} -> fresh {fresh:,.0f} "
            f"({verdict} {abs(change):.1%}, warn threshold {limit:.0%}"
            f"{', lower is better' if lower_is_better else ''})"
        )
        if gain < -limit:
            print(
                f"::warning title={metric} regression::{metric} {direction} "
                f"{abs(change):.1%} vs the committed {baseline_path} "
                f"({baseline:,.0f} -> {fresh:,.0f}). Runner noise is "
                f"common; investigate if this persists across runs."
            )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
