#!/usr/bin/env python3
"""Warn (non-fatally) when sweep throughput regresses against the baseline.

Usage: perf_guard.py BASELINE.json FRESH.json [--threshold 0.15]

Compares the `incremental-serial` schedules/second of a freshly measured
`BENCH_sweep.json` against the committed baseline. A drop larger than the
threshold emits a GitHub Actions `::warning::` annotation (and a plain
line for local runs) but always exits 0: CI runners' throughput is noisy,
so the guard flags trajectories for a human instead of failing builds.
"""

import json
import sys


def rate(path: str, backend: str = "incremental-serial") -> float:
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    for row in data["backends"]:
        if row["name"] == backend:
            return float(row["schedules_per_second"])
    raise KeyError(f"{path}: no backend named {backend!r}")


def main(argv: list[str]) -> int:
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, fresh_path = argv[1], argv[2]
    threshold = 0.15
    if "--threshold" in argv:
        threshold = float(argv[argv.index("--threshold") + 1])

    baseline = rate(baseline_path)
    fresh = rate(fresh_path)
    change = (fresh - baseline) / baseline
    verdict = "improved" if change >= 0 else "regressed"
    print(
        f"incremental-serial: baseline {baseline:,.0f} -> fresh {fresh:,.0f} "
        f"schedules/s ({verdict} {abs(change):.1%}, warn threshold {threshold:.0%})"
    )
    if change < -threshold:
        print(
            f"::warning title=sweep throughput regression::incremental-serial "
            f"dropped {abs(change):.1%} vs the committed BENCH_sweep.json "
            f"({baseline:,.0f} -> {fresh:,.0f} schedules/s). Runner noise is "
            f"common; investigate if this persists across runs."
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
