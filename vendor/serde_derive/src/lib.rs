//! Offline stand-in for `serde_derive`.
//!
//! The workspace vendors a minimal `serde` facade (see `vendor/serde`)
//! because builds run without network access to crates.io. Nothing in the
//! workspace serializes values yet — the `#[derive(Serialize, Deserialize)]`
//! attributes on model types only declare intent — so these derive macros
//! expand to nothing. Swap the vendored crates for the real ones in the
//! workspace manifest when a wire format is actually needed.

use proc_macro::TokenStream;

/// Derive macro for `serde::Serialize`; expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive macro for `serde::Deserialize`; expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
