//! Offline stand-in for `crossbeam`.
//!
//! Builds in this workspace run without network access to crates.io, so the
//! threaded runtime and the parallel sweep engine resolve against this
//! facade instead of the real crate. It covers the two surfaces the
//! workspace actually uses:
//!
//! * [`channel`] — unbounded multi-producer **multi-consumer** channels
//!   (`unbounded()`, clonable `Sender`/`Receiver`, `send`, `recv`,
//!   `try_recv`, `recv_timeout`, `iter`), semantically matching
//!   `crossbeam-channel`: any number of workers may pull from the same
//!   `Receiver`, which is what the sweep engine's work queue needs and what
//!   `std::sync::mpsc` cannot provide. Implemented with a mutex-guarded
//!   queue and a condvar — correct and simple rather than lock-free; swap
//!   the workspace manifest back to the real crate for the lock-free
//!   implementation, `select!`, or bounded channels.
//! * [`thread`] — scoped threads (`thread::scope`, `Scope::spawn`),
//!   backed by `std::thread::scope` (Rust >= 1.63). As in crossbeam, the
//!   closure handed to [`thread::scope`] receives the scope so it can spawn
//!   borrowing threads, and the call returns `Err` with the panic payload
//!   if any unjoined spawned thread panicked.

/// Unbounded MPMC channels (the `crossbeam-channel` surface the workspace
/// uses).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel. Clonable and shareable
    /// across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Clonable: multiple
    /// workers may compete for messages from the same channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Sends `t`, failing only if every receiver has been dropped.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel lock poisoned");
            if state.receivers == 0 {
                return Err(SendError(t));
            }
            state.queue.push_back(t);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock poisoned").senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock poisoned");
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                // Receivers blocked in recv must observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel lock poisoned");
            loop {
                if let Some(t) = state.queue.pop_front() {
                    return Ok(t);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel lock poisoned");
            }
        }

        /// Receives a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel lock poisoned");
            match state.queue.pop_front() {
                Some(t) => Ok(t),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives, every sender is gone, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().expect("channel lock poisoned");
            loop {
                if let Some(t) = state.queue.pop_front() {
                    return Ok(t);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, result) = self
                    .shared
                    .ready
                    .wait_timeout(state, remaining)
                    .expect("channel lock poisoned");
                state = guard;
                if result.timed_out() && state.queue.is_empty() && state.senders > 0 {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Iterates over messages, ending when the channel is empty and
        /// every sender is gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock poisoned").receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().expect("channel lock poisoned").receivers -= 1;
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

/// Scoped threads (the `crossbeam::thread` surface the workspace uses).
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope in which threads borrowing from the enclosing stack frame
    /// can be spawned.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; dropping it detaches the thread within
    /// the scope (the scope still joins it before returning).
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from outside the scope. As in
        /// crossbeam, the closure receives the scope so it can spawn
        /// further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(Scope { inner })) }
        }
    }

    /// Creates a scope, runs `f` in it, and joins every spawned thread
    /// before returning. Returns `Err` with the panic payload if `f` or an
    /// unjoined spawned thread panicked (crossbeam's contract).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(Scope { inner: s }))))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn send_through_shared_reference_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_timeout_reports_timeout_then_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn multiple_consumers_partition_the_queue() {
        let (tx, rx) = unbounded::<u64>();
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || rx.iter().sum::<u64>())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // Every message consumed exactly once, across all consumers.
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_when_all_receivers_gone() {
        use super::channel::SendError;
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(3), Err(SendError(3)));
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let result = super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            42
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn scope_reports_spawned_panics_as_err() {
        let result = super::thread::scope(|s| {
            s.spawn(|_| panic!("worker exploded"));
        });
        assert!(result.is_err());
    }
}
