//! Offline stand-in for `crossbeam`.
//!
//! Builds in this workspace run without network access to crates.io. The
//! threaded runtime only uses unbounded MPSC channels — `unbounded()`,
//! `Sender::send` (through a shared reference; `std::sync::mpsc::Sender` is
//! `Sync` since Rust 1.72), `Receiver::recv_timeout`, and the
//! [`channel::RecvTimeoutError`] variants — all of which the standard
//! library provides under the same names. This facade re-exports them under
//! crossbeam's paths; swap the workspace manifest back to the real crate
//! for `select!` or bounded channels.

/// Multi-producer single-consumer channels (crossbeam's `channel` module
/// surface, backed by `std::sync::mpsc`).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender};

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn send_through_shared_reference_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx = Arc::new(tx);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = Arc::clone(&tx);
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_timeout_reports_timeout_then_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }
}
