//! Offline stand-in for `serde`.
//!
//! Builds in this workspace run without network access to crates.io, so the
//! handful of `#[derive(Serialize, Deserialize)]` annotations on model types
//! resolve against this facade: two marker traits and derives that expand to
//! nothing (`vendor/serde_derive`). No code in the workspace bounds on these
//! traits or serializes values yet; when a real wire format lands, point the
//! workspace manifest at the real `serde` and everything keeps compiling.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
