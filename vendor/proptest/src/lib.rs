//! Offline stand-in for `proptest`.
//!
//! Builds in this workspace run without network access to crates.io, so the
//! property-based suites resolve against this facade. It keeps proptest's
//! *interface* — the [`proptest!`] macro with `pattern in strategy`
//! arguments and `#![proptest_config]`, the [`strategy::Strategy`] trait
//! with `prop_map`, integer-range and tuple strategies,
//! [`collection::vec`], [`arbitrary::any`], and the `prop_assert*` /
//! `prop_assume!` macros — but replaces the engine: each test runs a fixed
//! number of seeded random cases with **no shrinking** and no persisted
//! failure regressions. Seeds derive deterministically from the test's
//! module path and case index, so failures reproduce across runs and
//! machines. Swap the workspace manifest back to the real crate to regain
//! shrinking.

/// Test-case execution: configuration, seeding, and failure signaling.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's assumptions did not hold; it is skipped, not failed.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    /// Deterministic per-case generator: a function of the test's identity
    /// and the case index only, so failures reproduce across runs.
    #[must_use]
    pub fn case_rng(test: &str, case: u32) -> SmallRng {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SmallRng::seed_from_u64(seed ^ (u64::from(case) << 32 | u64::from(case)))
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore};

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, map: f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Strategy for `bool` (used via [`crate::bool::ANY`]).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut SmallRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The [`any`](arbitrary::any) entry point for default strategies.
pub mod arbitrary {
    use core::marker::PhantomData;

    use rand::rngs::SmallRng;
    use rand::RngCore;

    use crate::strategy::Strategy;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut SmallRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<A> {
        _marker: PhantomData<A>,
    }

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;

        fn generate(&self, rng: &mut SmallRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`'s full domain.
    #[must_use]
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy { _marker: PhantomData }
    }
}

/// Strategies for collections.
pub mod collection {
    use rand::rngs::SmallRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Number of elements a collection strategy may generate.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { min: exact, max_inclusive: exact }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange { min: range.start, max_inclusive: range.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty size range");
            SizeRange { min: *range.start(), max_inclusive: *range.end() }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` values with a length in `size`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Strategies for `bool`.
pub mod bool {
    /// Generates `true` and `false` with equal probability.
    pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
}

/// The glob-importable API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property-based tests.
///
/// Matches proptest's surface syntax: an optional
/// `#![proptest_config(expr)]` header followed by `fn` items whose
/// arguments are `pattern in strategy` pairs. Each generated `#[test]` runs
/// [`Config::cases`](test_runner::Config) seeded random cases; a failed
/// `prop_assert*` panics with the case index (there is no shrinking).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_cases! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let mut __accepted: u32 = 0;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $pat =
                        $crate::strategy::Strategy::generate(&($strategy), &mut __rng);
                )*
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __result {
                    ::core::result::Result::Ok(()) => {
                        __accepted += 1;
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!("proptest case #{} failed: {}", __case, __msg);
                    }
                }
            }
            // A property whose every case is rejected by `prop_assume!`
            // asserted nothing; the real crate errors out in that
            // situation too, so don't report a vacuous pass.
            assert!(
                __config.cases == 0 || __accepted > 0,
                "proptest: all {} cases rejected by prop_assume!; property never checked",
                __config.cases,
            );
        }
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
}

/// `assert!` that reports failure to the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::string::ToString::to_string(concat!(
                    "assertion failed: ",
                    stringify!($cond)
                )),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports failure to the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (__left, __right) => {
                if !(*__left == *__right) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                            __left, __right
                        ),
                    ));
                }
            }
        }
    };
}

/// `assert_ne!` that reports failure to the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (__left, __right) => {
                if *__left == *__right {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
                            __left, __right
                        ),
                    ));
                }
            }
        }
    };
}

/// Skips the current case when its assumptions do not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::ToString::to_string(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let mut a = crate::test_runner::case_rng("mod::test", 3);
        let mut b = crate::test_runner::case_rng("mod::test", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn vec_strategy_respects_size() {
        let strategy = crate::collection::vec(0u32..10, 0..5);
        let mut rng = crate::test_runner::case_rng("vec", 0);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!(v.len() < 5);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_values_obey_strategies(
            small in 0usize..8,
            (lo, hi) in (0u32..5, 10u32..20),
            flag in crate::bool::ANY,
            wide in any::<u64>(),
            mapped in (0u64..4).prop_map(|x| x * 2),
        ) {
            prop_assert!(small < 8);
            prop_assert!(lo < 5 && (10..20).contains(&hi));
            prop_assert!(usize::from(flag) <= 1);
            prop_assume!(wide != 1);
            prop_assert_ne!(wide, 1);
            prop_assert_eq!(mapped % 2, 0);
        }
    }
}
