//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Builds in this workspace run without network access to crates.io, so the
//! simulator's seeded adversaries resolve against this facade instead. It
//! implements exactly the surface the workspace uses — [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over (inclusive)
//! integer ranges, [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`] —
//! on top of a splitmix64 generator. Streams are deterministic functions of
//! the seed, which is all the simulator requires; statistical quality
//! beyond that is not a goal. Swap the workspace manifest back to the real
//! `rand` when the registry is reachable.

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // The real crate panics on out-of-range p in all build profiles;
        // match it so swapping back does not surface new panics.
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 uniform mantissa bits, the same construction the real crate
        // documents for unit-interval floats.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

/// Uniform range sampling.
pub mod distributions {
    /// Uniform sampling over range types.
    pub mod uniform {
        use crate::RngCore;

        /// Range types [`crate::Rng::gen_range`] accepts.
        pub trait SampleRange<T> {
            /// Samples one value uniformly from `self`.
            fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_sample_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        // Two's-complement subtraction in u64 yields the
                        // width of any (signed or unsigned) 64-bit-or-
                        // narrower range.
                        let span = (self.end as u64).wrapping_sub(self.start as u64);
                        self.start.wrapping_add((rng.next_u64() % span) as $t)
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                        if span == 0 {
                            // Full domain of a 64-bit type.
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add((rng.next_u64() % span) as $t)
                    }
                }
            )*};
        }

        impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);
    }
}

/// Sequence-related extension traits.
pub mod seq {
    use crate::RngCore;

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
