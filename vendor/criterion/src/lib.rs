//! Offline stand-in for `criterion`.
//!
//! Builds in this workspace run without network access to crates.io, so the
//! benches in `crates/bench/benches/` link against this minimal harness
//! instead: same macro and builder surface (`criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, `sample_size`, `throughput`, `iter`), but the
//! implementation just times each closure over a fixed number of samples
//! and prints the median per-iteration cost. No statistics, no plots, no
//! CLI — swap the workspace manifest back to the real crate for those.
//! `cargo bench --no-run` (what CI enforces) compiles the same sources
//! either way.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a benchmarked value away.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _criterion: self, sample_size: 30 }
    }
}

/// Identifies one benchmark within a group, optionally parameterized.
#[derive(Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }
}

/// Throughput annotation for a benchmark (recorded, then ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput (ignored by this stand-in).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Times `f` and prints the median per-iteration cost.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, &mut f);
        self
    }

    /// Times `f` with `input` and prints the median per-iteration cost.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (a no-op; kept for API compatibility).
    pub fn finish(self) {}

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher { elapsed: Duration::ZERO, iterations: 0 };
            f(&mut bencher);
            if bencher.iterations > 0 {
                samples.push(bencher.elapsed / bencher.iterations);
            }
        }
        samples.sort_unstable();
        match samples.get(samples.len() / 2) {
            Some(median) => {
                println!("  {id}: median {median:?}/iter over {} samples", samples.len())
            }
            None => println!("  {id}: no samples"),
        }
    }
}

/// Times closures on behalf of one benchmark sample.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    /// Runs `f` once and accumulates its wall-clock cost.
    ///
    /// The real criterion auto-tunes the iteration count per sample; this
    /// stand-in does one iteration per sample and relies on the group's
    /// sample count instead.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        std_black_box(out);
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` function, mirroring criterion's macro.
///
/// `cargo bench` invokes the binary with harness flags such as `--bench`;
/// they are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
