//! Explore the valency landscape of binary consensus — the machinery of
//! the paper's lower-bound proof (Lemmas 3–5), computed exactly for a
//! small system.
//!
//! ```text
//! cargo run --example bivalency_explorer
//! ```

use indulgent_checker::{find_bivalent_prefix, initial_valency, Valency, ValencyParams};
use indulgent_consensus::{AtPlus2, RotatingCoordinator};
use indulgent_model::{ProcessId, SystemConfig, Value};
use indulgent_sim::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SystemConfig::majority(3, 1)?;
    let factory = move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::new(cfg, id, v, RotatingCoordinator::new(cfg, id))
    };
    let params = ValencyParams::new(3, 30);

    println!("valency of every binary initial configuration (n=3, t=1, A_t+2):\n");
    println!("  config      valency");
    println!("  ----------  --------");
    let mut bivalent_example: Option<Vec<Value>> = None;
    for bits in 0u64..8 {
        let proposals: Vec<Value> = (0..3).map(|i| Value::binary(bits & (1 << i) != 0)).collect();
        let v = initial_valency(&factory, cfg, ModelKind::Es, &proposals, params);
        let label = match v {
            Valency::Zero => "0-valent",
            Valency::One => "1-valent",
            Valency::Bivalent => "BIVALENT",
        };
        let cfg_str: Vec<String> = proposals.iter().map(ToString::to_string).collect();
        println!("  ({})   {label}", cfg_str.join(", "));
        if v.is_bivalent() && bivalent_example.is_none() {
            bivalent_example = Some(proposals);
        }
    }

    let proposals = bivalent_example.expect("Lemma 3: a bivalent initial configuration exists");
    println!(
        "\nLemma 3 witness: {:?} is bivalent — both decisions reachable by serial runs.",
        proposals.iter().map(|v| v.get()).collect::<Vec<_>>()
    );

    // Lemma 4's guarantee is bivalence through round t - 1. For t = 1 that
    // is just the initial configuration: with the single crash spent in a
    // 1-round prefix, every extension is forced, so all 1-round prefixes
    // are univalent.
    match find_bivalent_prefix(&factory, &proposals, cfg, ModelKind::Es, 1, params) {
        Some(prefix) => println!("\nunexpected: bivalent 1-round prefix {prefix:?}"),
        None => println!(
            "\nall 1-round serial prefixes are univalent (t = 1: Lemma 4 stops at round 0)."
        ),
    }

    // With t = 2 (n = 5) the guarantee is non-trivial: a first crash seen
    // by only part of the system leaves both outcomes reachable.
    let cfg5 = SystemConfig::majority(5, 2)?;
    let factory5 = move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::new(cfg5, id, v, RotatingCoordinator::new(cfg5, id))
    };
    let proposals5: Vec<Value> = vec![Value::ONE, Value::ONE, Value::ONE, Value::ONE, Value::ZERO];
    let params5 = ValencyParams::new(4, 40);
    match find_bivalent_prefix(&factory5, &proposals5, cfg5, ModelKind::Es, 1, params5) {
        Some(prefix) => {
            println!("\nLemma 4 witness for n=5, t=2 — a bivalent 1-round serial partial run:");
            for p in cfg5.processes() {
                if let Some(r) = prefix.crash_round(p) {
                    println!("  {p} crashes in {r} (message delivered to a strict subset)");
                }
            }
            println!(
                "bivalence survives to round t - 1 = 1; the paper pushes it one round\n\
                 further with false-suspicion runs, which is why t + 1 is impossible\n\
                 and A_t+2 pays t + 2 — the price of indulgence."
            );
        }
        None => println!("no bivalent 1-round prefix found (unexpected for t = 2)"),
    }
    Ok(())
}
