//! The failure-detector side of the story (paper Sects. 4–5): run the
//! `A_◇S` variant with an eventually strong detector — fast when the
//! detector is accurate, safe when it lies.
//!
//! ```text
//! cargo run --example failure_detectors
//! ```

use indulgent_consensus::{AtPlus2, RotatingCoordinator};
use indulgent_fd::{CrashInfo, EventuallyStrongDetector, SuspicionScript};
use indulgent_model::{ProcessId, ProcessSet, Round, SystemConfig, Value};
use indulgent_sim::{run_schedule, ModelKind, Schedule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SystemConfig::majority(5, 2)?;
    let proposals: Vec<Value> = [6u64, 2, 8, 4, 7].map(Value::new).to_vec();
    let schedule = Schedule::failure_free(cfg, ModelKind::Es);

    // 1. An accurate ◇S (no false suspicions): decisions at t + 2.
    let info = CrashInfo::none(5);
    let accurate = {
        let info = info.clone();
        move |i: usize, v: Value| {
            let id = ProcessId::new(i);
            let detector = EventuallyStrongDetector::new(
                info.clone(),
                Round::FIRST,
                ProcessId::new(0),
                SuspicionScript::new(),
            );
            AtPlus2::with_detector(cfg, id, v, RotatingCoordinator::new(cfg, id), detector)
        }
    };
    let outcome =
        run_schedule(&accurate, &proposals, &schedule, 60).expect("one proposal per process");
    outcome.check_consensus()?;
    println!(
        "accurate diamond-S: global decision at {} (t + 2 = {})",
        outcome.global_decision_round().expect("decided"),
        cfg.t() + 2
    );

    // 2. A lying ◇S: everyone permanently suspects the correct p1 (weak
    // accuracy allows it — only one correct process must eventually be
    // trusted). Fast decision is lost, but the fallback consensus C
    // finishes the job and agreement holds.
    let mut script = SuspicionScript::new();
    for k in 1..=60u32 {
        for obs in 0..5usize {
            if obs != 1 {
                script.insert((k, obs), ProcessSet::from_ids([ProcessId::new(1)]));
            }
        }
    }
    let lying = move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        let detector = EventuallyStrongDetector::new(
            info.clone(),
            Round::FIRST,
            ProcessId::new(0),
            script.clone(),
        );
        AtPlus2::with_detector(cfg, id, v, RotatingCoordinator::new(cfg, id), detector)
    };
    let outcome =
        run_schedule(&lying, &proposals, &schedule, 60).expect("one proposal per process");
    outcome.check_consensus()?;
    println!(
        "lying diamond-S:    global decision at {} (deferred to the fallback C, still safe)",
        outcome.global_decision_round().expect("decided"),
    );
    println!("indulgence in action: the detector was wrong for the whole run and was forgiven");
    Ok(())
}
