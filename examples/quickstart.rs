//! Quickstart: run the paper's `A_{t+2}` consensus in a synchronous run of
//! the eventually synchronous model and watch it decide at round `t + 2`.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use indulgent_consensus::{AtPlus2, RotatingCoordinator};
use indulgent_model::{ProcessId, Round, SystemConfig, Value};
use indulgent_sim::{run_schedule, run_traced, ModelKind, Schedule, ScheduleBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A system of n = 5 processes, at most t = 2 crashes (t < n/2).
    let cfg = SystemConfig::majority(5, 2)?;
    println!("system: {cfg} (quorum = {})", cfg.quorum());

    // Each process proposes a value; A_{t+2} converges to the minimum.
    let proposals: Vec<Value> = [6u64, 2, 8, 4, 7].map(Value::new).to_vec();
    let factory = move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::new(cfg, id, v, RotatingCoordinator::new(cfg, id))
    };

    // 1. The happy path: a failure-free synchronous run.
    let schedule = Schedule::failure_free(cfg, ModelKind::Es);
    let outcome =
        run_schedule(&factory, &proposals, &schedule, 30).expect("one proposal per process");
    outcome.check_consensus()?;
    println!("\nfailure-free synchronous run:");
    for d in outcome.decisions.iter().flatten() {
        println!("  {} decided {} at {}", d.process, d.value, d.round);
    }
    println!(
        "  global decision at {} (t + 2 = {})",
        outcome.global_decision_round().expect("decided"),
        cfg.t() + 2
    );

    // 2. Crashes during the run: still t + 2, still agreement.
    let schedule = ScheduleBuilder::new(cfg, ModelKind::Es)
        .crash_delivering_only(
            ProcessId::new(1), // the minimum-holder crashes...
            Round::new(1),
            [ProcessId::new(0)], // ...reaching only p0
        )
        .crash_before_send(ProcessId::new(2), Round::new(3))
        .build(30)?;
    let trace = run_traced(&factory, &proposals, &schedule, 30).expect("one proposal per process");
    trace.outcome().check_consensus()?;
    println!("\nsynchronous run with 2 crashes:");
    for d in trace.outcome().decisions.iter().flatten() {
        println!("  {} decided {} at {}", d.process, d.value, d.round);
    }
    println!(
        "  global decision at {} — the paper's fast-decision property (Lemma 13)",
        trace.outcome().global_decision_round().expect("decided")
    );
    println!("\ntimeline ('.' round ok, 's' suspicion, 'D' decision, 'X' crash):\n");
    println!("{}", trace.render());
    Ok(())
}
