//! The replicated key-value store as a *networked service*.
//!
//! Where `replicated_kv` drives the log subsystem with an in-process
//! workload, this example runs the full `indulgent-server` stack: an
//! ephemeral TCP server hosting the 5-replica `A_{t+2}` group, clients
//! speaking the length-framed wire protocol over real sockets, and the
//! exactly-once session contract exercised end to end — a retried
//! request id, and a client killed mid-request whose reconnecting
//! session replays the in-doubt command without it applying twice.
//!
//! ```text
//! cargo run --release --example kv_service
//! ```

use std::time::Duration;

use indulgent_model::{ClientId, RequestId};
use indulgent_server::{
    EngineConfig, KvOp, KvServer, KvService, LocalKv, Outcome, PipeClient, RemoteKv,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Batch size 1 keeps the slot arithmetic legible in the output.
    let config = EngineConfig::default_5().with_batch_size(1).with_pipeline_depth(2);
    let server = KvServer::bind("127.0.0.1:0", config)?;
    let addr = server.addr();
    println!("replicated-KV service on {addr} (n=5, t=2, A_t+2 round-2 fast path)\n");

    // A networked session: puts and gets over framed TCP. Reads are
    // sequenced through the log too — the returned slot is the read's
    // linearization point.
    let mut alice = RemoteKv::connect(addr, ClientId(1))?;
    let put = alice.put(7, 700)?;
    let get = alice.get(7)?;
    println!("alice  put 7 := 700      -> slot {}", put.outcome.slot());
    match get.outcome {
        Outcome::Get { slot, value } => {
            println!("alice  get 7             -> slot {slot}, value {value:?}")
        }
        other => panic!("unexpected outcome {other:?}"),
    }

    // Retrying a request id replays the original acknowledgement from
    // the dedup cache instead of applying the write again.
    let first = alice.call_with(RequestId(10), KvOp::Put { key: 8, value: 800 })?;
    let retry = alice.call_with(RequestId(10), KvOp::Put { key: 8, value: 800 })?;
    assert_eq!(first, retry, "a retry replays the original ack");
    println!("alice  put 8 := 800 (x2) -> slot {} both times (dedup)", first.outcome.slot());

    // Kill a client mid-request: send the frame, drop the socket without
    // ever reading the ack. The service must neither hang nor apply the
    // command twice when the session reconnects and replays it.
    let mut doomed = PipeClient::connect(addr, ClientId(2), Duration::from_millis(1))?;
    doomed.send(RequestId(0), KvOp::Put { key: 9, value: 900 })?;
    drop(doomed);
    let mut revived = RemoteKv::connect_from(addr, ClientId(2), RequestId(0))?;
    let replayed = revived.call_with(RequestId(0), KvOp::Put { key: 9, value: 900 })?;
    println!("bob    killed mid-put, reconnected, replayed -> slot {}", replayed.outcome.slot());

    // The in-process layer sees the same store the sockets built.
    let mut local = LocalKv::connect(&server.engine(), ClientId(3));
    for key in [7u16, 8, 9] {
        match local.get(key)?.outcome {
            Outcome::Get { value, .. } => {
                println!("local  get {key}             -> value {value:?}")
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    drop((alice, revived, local));
    let audit = server.shutdown();
    audit.check()?;
    println!(
        "\naudit: {} slots, {} commands applied exactly once, {} retries absorbed, replay matches every ack",
        audit.applied_slots(),
        audit.committed_commands(),
        audit.dedup_hits()
    );
    Ok(())
}
