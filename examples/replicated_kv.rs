//! A replicated key-value store on the `indulgent-log` subsystem.
//!
//! Client writes `key := value` are encoded into command payloads,
//! batched by the frontend, and sequenced through pipelined `A_{t+2}`
//! instances (round-2 fast path when healthy). Every replica applies the
//! decided log in slot order, so all correct replicas materialize the
//! identical map — even when a replica crashes mid-run, and identically
//! on the wall-clock runtime and the deterministic simulator.
//!
//! ```text
//! cargo run --release --example replicated_kv
//! ```

use std::collections::BTreeMap;
use std::time::Instant;

use indulgent_log::{
    run_log_session, run_log_sim, ClientFrontend, IntakePolicy, LogConfig, LogReport, LogScenario,
    NetProfile,
};
use indulgent_model::{Round, SystemConfig};

/// Encodes `key := value` into a command payload.
fn write(key: u16, value: u32) -> u64 {
    (u64::from(key) << 32) | u64::from(value)
}

/// Applies a replica's decided log to an empty store.
fn materialize(report: &LogReport) -> BTreeMap<u16, u32> {
    let mut store = BTreeMap::new();
    for batch in report.canonical.applied_batches() {
        let batch = report.frontend.batch(batch).expect("disseminated");
        for cmd in &batch.commands {
            let key = (cmd.payload >> 32) as u16;
            let value = (cmd.payload & 0xffff_ffff) as u32;
            store.insert(key, value);
        }
    }
    store
}

fn workload(n: usize) -> ClientFrontend {
    let mut frontend = ClientFrontend::new(n, 4).with_intake(IntakePolicy::Shared);
    // 40 writes over 10 keys; later writes win, so the final store keeps
    // each key's last sequenced value.
    frontend.submit_all((0..40u64).map(|i| write((i % 10) as u16, 100 + i as u32)));
    frontend
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig::majority(5, 2)?;
    let log_config = LogConfig::sequential(10).with_batch_size(4).with_pipeline_depth(3);

    // 1. Healthy service on the threaded runtime: 10 slots, 4 writes per
    // batch, 3 instances pipelined.
    let start = Instant::now();
    let healthy = run_log_session(
        config,
        log_config,
        LogScenario::failure_free(config.n()),
        workload(config.n()),
        NetProfile::test_sized(),
    );
    healthy.check()?;
    let store = materialize(&healthy);
    println!(
        "healthy run ({:?}): {} commands committed over {} slots, store holds {} keys",
        start.elapsed(),
        healthy.committed_commands,
        healthy.canonical.len(),
        store.len()
    );
    for (k, v) in store.iter().take(3) {
        println!("  key {k} = {v}");
    }

    // 2. Crash a replica mid-run: the remaining majority keeps deciding,
    // and the survivors' store is identical.
    let crashed = run_log_session(
        config,
        log_config,
        LogScenario::failure_free(config.n()).crash(1, 3, Round::new(2)),
        workload(config.n()),
        NetProfile::test_sized(),
    );
    crashed.check()?;
    println!(
        "\nwith p1 crashing in slot 3: {} commands still committed, invariants hold",
        crashed.committed_commands
    );

    // 3. The same crash scenario on the deterministic simulator: the
    // decided log — and therefore the store — is identical, slot by slot.
    let simulated = run_log_sim(
        config,
        log_config,
        LogScenario::failure_free(config.n()).crash(1, 3, Round::new(2)),
        workload(config.n()),
    );
    simulated.check()?;
    assert_eq!(simulated.canonical, crashed.canonical, "substrates agree on the log");
    assert_eq!(materialize(&simulated), materialize(&crashed), "and hence on the store");
    println!("simulator replay materializes the identical store ({} keys)", store.len());

    println!("\nall replicas agree: one log, one store, on both substrates");
    Ok(())
}
