//! The paper's headline, in one program: consensus costs `t + 1` rounds in
//! the synchronous model but `t + 2` in the eventually synchronous model —
//! *the price of indulgence is one round* — and the best previously known
//! indulgent algorithm paid `2t + 2`.
//!
//! ```text
//! cargo run --example price_of_indulgence
//! ```

use indulgent_checker::worst_case_decision_round;
use indulgent_consensus::{AtPlus2, CoordinatorEcho, FloodSet, RotatingCoordinator};
use indulgent_model::{ProcessId, Round, SystemConfig, Value};
use indulgent_sim::{run_schedule, ModelKind, ScheduleBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let proposals: Vec<Value> = [5u64, 3, 8, 1].map(Value::new).to_vec();

    // Synchronous model, n = 4, t = 1: FloodSet decides at t + 1 = 2 in
    // every serial run — exhaustively checked.
    let scs = SystemConfig::synchronous(4, 1)?;
    let floodset = move |_i: usize, v: Value| FloodSet::new(scs, v);
    let scs_report = worst_case_decision_round(&floodset, scs, ModelKind::Scs, &proposals, 2, 10)?;
    println!(
        "SCS  (n=4, t=1): FloodSet worst case over {} serial runs: round {}",
        scs_report.runs,
        scs_report.worst_round.get()
    );

    // Eventually synchronous model, same n and t: A_{t+2} needs t + 2 = 3 —
    // also exhaustively checked, and provably unimprovable (Proposition 1).
    let es = SystemConfig::majority(4, 1)?;
    let at_plus2 = move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::new(es, id, v, RotatingCoordinator::new(es, id))
    };
    let es_report = worst_case_decision_round(&at_plus2, es, ModelKind::Es, &proposals, 3, 30)?;
    println!(
        "ES   (n=4, t=1): A_t+2    worst case over {} serial runs: round {}",
        es_report.runs,
        es_report.worst_round.get()
    );
    println!(
        "price of indulgence: {} round(s)\n",
        es_report.worst_round.get() - scs_report.worst_round.get()
    );

    // And what the state of the art paid before this paper: a Hurfin-Raynal
    // style algorithm loses two rounds per crashed coordinator. With t
    // coordinators crashing back to back: 2t + 2.
    for t in [1usize, 2, 3] {
        let n = 2 * t + 1;
        let cfg = SystemConfig::majority(n, t)?;
        let props: Vec<Value> = (0..n).map(|i| Value::new(i as u64 + 1)).collect();
        let mut b = ScheduleBuilder::new(cfg, ModelKind::Es);
        for p in 0..t {
            b = b.crash_before_send(ProcessId::new(p), Round::new(2 * p as u32 + 1));
        }
        let schedule = b.build(40)?;
        let hr = move |i: usize, v: Value| CoordinatorEcho::new(cfg, ProcessId::new(i), v);
        let outcome = run_schedule(&hr, &props, &schedule, 40).expect("one proposal per process");
        outcome.check_consensus()?;
        println!(
            "HR-style baseline (n={n}, t={t}): adversarial synchronous run decides at round {} \
             (2t+2={}), A_t+2 at {}",
            outcome.global_decision_round().expect("decided").get(),
            2 * t + 2,
            t + 2,
        );
    }
    Ok(())
}
