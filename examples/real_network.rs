//! Run `A_{t+2}` over real threads and channels — a manual chaos probe.
//!
//! One reusable [`Session`] (threads and channels spawned once) runs
//! three consensus instances back to back: a synchronous network, one
//! with a mid-protocol crash, and one with an asynchronous prefix causing
//! false suspicions. The same automaton code that runs under the
//! deterministic simulator races here against wall-clock timeouts.
//!
//! Flags make it a probe for arbitrary configurations:
//!
//! ```text
//! cargo run --release --example real_network -- --n 7 --t 3 --async-until 6 --seed 11
//! ```
//!
//! * `--n N` / `--t T` — system size and resilience (`t < n/2`);
//! * `--async-until R` — the asynchronous prefix lasts until round `R`;
//! * `--seed S` — seed for the prefix's delay coin flips.

use std::time::Duration;

use indulgent_consensus::{AtPlus2, RotatingCoordinator};
use indulgent_model::{ProcessId, Round, SystemConfig, Value};
use indulgent_runtime::{DelayModel, InstanceSpec, Session};

fn flag(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("usage: {name} <integer>"))
        })
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n = flag(&args, "--n", 5) as usize;
    let t = flag(&args, "--t", 2) as usize;
    let async_until = flag(&args, "--async-until", 5) as u32;
    let seed = flag(&args, "--seed", 7);

    let cfg = SystemConfig::majority(n, t)?;
    // Distinct proposals; the minimum (value 1, at p_{n-1}) must win.
    let proposals: Vec<Value> = (0..n).map(|i| Value::new((((i * 7) % n) + 1) as u64)).collect();
    let expected = *proposals.iter().min().expect("nonempty");
    let build = |cfg: SystemConfig, proposals: &[Value]| {
        proposals
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let id = ProcessId::new(i);
                AtPlus2::new(cfg, id, v, RotatingCoordinator::new(cfg, id))
            })
            .collect::<Vec<_>>()
    };

    // The session is spawned once; all three instances reuse its threads
    // and channels.
    let mut session = Session::new(cfg);
    let overall = std::time::Instant::now();

    // 1. A synchronous network: decisions at round t + 2, in real time.
    let started = std::time::Instant::now();
    let instance = session.start_instance(build(cfg, &proposals), &InstanceSpec::synchronous(cfg));
    let report = session.wait_instance(instance);
    println!("synchronous network ({:?}):", started.elapsed());
    for d in report.decisions.iter().flatten() {
        assert_eq!(d.value, expected);
        println!("  {} decided {} at {}", d.process, d.value, d.round);
    }

    // 2. Crash one process mid-protocol (same threads, next instance).
    let started = std::time::Instant::now();
    let spec = InstanceSpec::synchronous(cfg).crash(ProcessId::new(1), Round::new(2));
    let instance = session.start_instance(build(cfg, &proposals), &spec);
    let report = session.wait_instance(instance);
    for d in report.decisions.iter().flatten() {
        assert_eq!(d.value, expected, "agreement under the crash");
    }
    let decided = report.decisions.iter().flatten().map(|d| d.round).max().expect("decided");
    println!(
        "\nwith p1 crashing at round 2 ({:?}): global decision at {decided}",
        started.elapsed()
    );

    // 3. An asynchronous prefix: messages randomly delayed beyond the
    // grace window until round `async_until`, causing false suspicions;
    // the algorithm falls back to its underlying consensus where needed
    // and still agrees.
    let started = std::time::Instant::now();
    let spec = InstanceSpec::synchronous(cfg).with_delays(DelayModel::AsyncUntil {
        until_round: async_until,
        delay: Duration::from_millis(40),
        probability: 0.3,
        seed,
    });
    let instance = session.start_instance(build(cfg, &proposals), &spec);
    let report = session.wait_instance(instance);
    let decided = report.decisions.iter().flatten().map(|d| d.round).max().expect("decided");
    println!(
        "\nasynchronous prefix until round {async_until} ({:?}): global decision at {decided}",
        started.elapsed()
    );

    // Uniform agreement across every instance.
    for d in report.decisions.iter().flatten() {
        assert_eq!(d.value, expected, "agreement under asynchrony");
    }
    println!(
        "\nuniform agreement held in all three executions (n={n}, t={t}, total {:?}, one thread pool)",
        overall.elapsed()
    );
    Ok(())
}
