//! Run `A_{t+2}` over real threads and channels: a synchronous network
//! first, then one with an asynchronous prefix causing false suspicions.
//! The same automaton code that runs under the deterministic simulator
//! races here against wall-clock timeouts.
//!
//! ```text
//! cargo run --example real_network
//! ```

use std::time::Duration;

use indulgent_consensus::{AtPlus2, RotatingCoordinator};
use indulgent_model::{ProcessId, Round, SystemConfig, Value};
use indulgent_runtime::{run_network, DelayModel, NetworkConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SystemConfig::majority(5, 2)?;
    let proposals: Vec<Value> = [6u64, 2, 8, 4, 7].map(Value::new).to_vec();
    let factory = move |i: usize, v: Value| {
        let id = ProcessId::new(i);
        AtPlus2::new(cfg, id, v, RotatingCoordinator::new(cfg, id))
    };

    // 1. A synchronous network: decisions at round t + 2 = 4, in real time.
    let net = NetworkConfig::synchronous(cfg);
    let report = run_network(cfg, &factory, &proposals, &net);
    report.outcome.check_consensus()?;
    println!("synchronous network ({}ms):", report.elapsed.as_millis());
    for d in report.outcome.decisions.iter().flatten() {
        println!("  {} decided {} at {}", d.process, d.value, d.round);
    }

    // 2. Crash one process mid-protocol.
    let net = NetworkConfig::synchronous(cfg).crash(ProcessId::new(1), Round::new(2));
    let report = run_network(cfg, &factory, &proposals, &net);
    report.outcome.check_consensus()?;
    println!(
        "\nwith p1 crashing at round 2 ({}ms): global decision at {}",
        report.elapsed.as_millis(),
        report.outcome.global_decision_round().expect("decided")
    );

    // 3. An asynchronous prefix: messages randomly delayed beyond the grace
    // window for the first 4 rounds, causing false suspicions; the
    // algorithm falls back to its underlying consensus where needed and
    // still agrees.
    let net = NetworkConfig::synchronous(cfg).with_delays(DelayModel::AsyncUntil {
        until_round: 5,
        delay: Duration::from_millis(40),
        probability: 0.3,
        seed: 7,
    });
    let report = run_network(cfg, &factory, &proposals, &net);
    report.outcome.check_consensus()?;
    println!(
        "\nasynchronous prefix until round 5 ({}ms): global decision at {}",
        report.elapsed.as_millis(),
        report.outcome.global_decision_round().expect("decided")
    );
    println!("uniform agreement held in all three executions");
    Ok(())
}
