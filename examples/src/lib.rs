//! This crate exists only to host the runnable examples
//! (`cargo run --example quickstart`, etc.). See the files next to
//! `Cargo.toml`.
